"""Elastic worker membership: identity, conservation, and alignment.

Pins the tentpole behaviours of :mod:`repro.storm.elastic` plus the
worker-identity bug that blocked it: worker ids are permanent *names*
(``Cluster.worker_by_id``), never positions into ``cluster.workers`` —
positional indexing breaks the moment the pool shrinks or grows.
"""

import numpy as np
import pytest

from repro.core import PerformancePredictor, PredictiveController
from repro.core.config import ControllerConfig
from repro.storm import (
    NodeSpec,
    SimulationBuilder,
    SlowdownFault,
    TopologyBuilder,
    TopologyConfig,
)
from repro.storm.executor import SpoutExecutor
from repro.storm.grouping import LocalOrShuffleGrouping
from tests.storm.helpers import CounterSpout, PassBolt, SinkBolt

NODES = tuple(
    NodeSpec(f"n{i}", cores=4, slots=2) for i in range(4)
)


def topology(num_workers=3, rate=150.0, grouping="shuffle"):
    b = TopologyBuilder()
    b.set_spout("src", CounterSpout(rate=rate), parallelism=1)
    mid = b.set_bolt("mid", PassBolt(), parallelism=4)
    if grouping == "shuffle":
        mid.shuffle_grouping("src")
    elif grouping == "local_or_shuffle":
        mid.local_or_shuffle_grouping("src")
    elif grouping == "dynamic":
        mid.dynamic_grouping("src")
    b.set_bolt("sink", SinkBolt(), parallelism=2).shuffle_grouping("mid")
    return b.build(
        "elastic-t",
        TopologyConfig(
            num_workers=num_workers, message_timeout=5.0, max_replays=8
        ),
    )


def build_sim(num_workers=3, rate=150.0, grouping="shuffle", **kwargs):
    return (
        SimulationBuilder(topology(num_workers, rate, grouping))
        .nodes(NODES)
        .seed(11)
        .build()
    )


def accounting(sim):
    ledger = sim.cluster.ledger
    opened = sum(
        ex.trees_opened
        for ex in sim.cluster.executors.values()
        if isinstance(ex, SpoutExecutor)
    )
    return opened, ledger.acked_count, ledger.failed_count, ledger.in_flight


def assert_conserved(sim):
    opened, acked, failed, in_flight = accounting(sim)
    assert opened == acked + failed + in_flight


class TestWorkerIdentity:
    def test_worker_by_id_survives_removal(self):
        sim = build_sim()
        sim.run(5.0)
        cluster = sim.cluster
        # Remove the *middle* worker: under positional indexing every
        # id above it would now resolve to the wrong worker.
        cluster.elastic.remove_worker(1)
        assert not cluster.has_worker(1)
        assert cluster.worker_by_id(2).worker_id == 2
        assert cluster.tasks_of_worker(2) == cluster.worker_by_id(2).task_ids
        with pytest.raises(KeyError, match=r"live ids: \[0, 2\]"):
            cluster.worker_by_id(1)

    def test_new_worker_ids_are_never_reused(self):
        sim = build_sim()
        sim.run(2.0)
        cluster = sim.cluster
        cluster.elastic.remove_worker(2)
        added = cluster.elastic.add_worker()
        assert added.worker_id == 3  # not a recycled 2
        assert sorted(w.worker_id for w in cluster.workers) == [0, 1, 3]

    def test_fault_on_high_id_after_removal(self):
        # A scheduled fault targeting worker 2 must still land after a
        # lower-id worker leaves (positionally, index 2 no longer exists).
        sim = (
            SimulationBuilder(topology())
            .nodes(NODES)
            .seed(11)
            .faults(
                [SlowdownFault(start=6.0, duration=4.0, worker_id=2, factor=8.0)]
            )
            .build()
        )
        sim.run(3.0)
        sim.cluster.elastic.remove_worker(0)
        assert len(sim.cluster.workers) == 2
        sim.run(10.0)  # fault applies and reverts against worker *2*
        assert sim.cluster.worker_by_id(2).slow_factor == 1.0
        assert_conserved(sim)

    def test_membership_epoch_bumps_on_every_change(self):
        sim = build_sim()
        sim.run(1.0)
        cluster = sim.cluster
        e0 = cluster.membership_epoch
        cluster.elastic.add_worker()
        assert cluster.membership_epoch == e0 + 1
        cluster.elastic.remove_worker()
        assert cluster.membership_epoch == e0 + 2


class TestScaleOut:
    def test_scale_out_is_lossless(self):
        sim = build_sim()
        sim.run(10.0)
        _, _, failed_before, _ = accounting(sim)
        worker = sim.cluster.elastic.add_worker()
        # queues moved with the executors: nothing failed at the instant
        # of migration
        _, _, failed_after, _ = accounting(sim)
        assert failed_after == failed_before
        assert worker.executors, "rebalance moved nothing onto the newcomer"
        assert_conserved(sim)
        sim.run(10.0)
        assert_conserved(sim)
        # in-transit tuples followed the executors: the topology still
        # makes progress through the migrated tasks
        assert all(
            ex.executed_count > 0
            for ex in worker.executors
        )

    def test_scale_out_event_log(self):
        sim = build_sim()
        sim.run(2.0)
        worker = sim.cluster.elastic.add_worker()
        (event,) = sim.cluster.elastic.log
        assert event.kind == "add"
        assert event.worker_id == worker.worker_id
        assert event.moved_tasks == [ex.task_id for ex in worker.executors]

    def test_scale_out_rejects_full_node(self):
        sim = build_sim()
        sim.run(1.0)
        node = sim.cluster.workers[0].node
        while node.slots - len(node.workers) > 0:
            sim.cluster.elastic.add_worker(node)
        with pytest.raises(ValueError, match="no free slot"):
            sim.cluster.elastic.add_worker(node)


class TestScaleIn:
    def test_scale_in_drains_and_conserves(self):
        sim = build_sim()
        sim.run(10.0)
        lost = sim.cluster.elastic.remove_worker()
        assert lost >= 0
        assert len(sim.cluster.workers) == 2
        assert_conserved(sim)
        _, acked_before, _, _ = accounting(sim)
        sim.run(10.0)
        _, acked_after, _, _ = accounting(sim)
        assert acked_after > acked_before  # survivors keep processing
        assert_conserved(sim)

    def test_scale_in_refuses_last_worker(self):
        sim = build_sim(num_workers=1)
        sim.run(1.0)
        with pytest.raises(RuntimeError, match="last worker"):
            sim.cluster.elastic.remove_worker()

    def test_default_victim_is_youngest(self):
        sim = build_sim()
        sim.run(1.0)
        added = sim.cluster.elastic.add_worker()
        sim.cluster.elastic.remove_worker()
        assert not sim.cluster.has_worker(added.worker_id)
        assert sorted(w.worker_id for w in sim.cluster.workers) == [0, 1, 2]


class TestGroupingRewire:
    def test_local_or_shuffle_pools_track_placement(self):
        sim = build_sim(grouping="local_or_shuffle")
        sim.run(5.0)
        sim.cluster.elastic.add_worker()
        placement = sim.cluster.transport.placement
        for ex in sim.cluster.executors.values():
            for consumers in ex.outbound.values():
                for _cid, grouping in consumers:
                    if not isinstance(grouping, LocalOrShuffleGrouping):
                        continue
                    expected_local = [
                        t
                        for t in grouping.target_tasks
                        if placement[t] is placement[ex.task_id]
                    ]
                    assert grouping.local_tasks == expected_local
                    pool = expected_local or list(grouping.target_tasks)
                    assert grouping._pool == pool
                    assert 0 <= grouping._next < len(pool)
        sim.run(5.0)
        assert_conserved(sim)


class TestMonitorAlignment:
    def _controlled_sim(self):
        sim = (
            SimulationBuilder(topology(grouping="dynamic"))
            .nodes(NODES)
            .seed(11)
            .controller(
                PredictiveController(
                    PerformancePredictor(None, window=3),
                    ControllerConfig(control_interval=2.0, window=3),
                )
            )
            .build()
        )
        return sim, sim.controller

    def test_feature_matrices_stay_aligned_across_epoch(self):
        sim, controller = self._controlled_sim()
        sim.run(10.0)
        monitor = controller.monitor
        n_before = monitor.n_intervals
        added = sim.cluster.elastic.add_worker()
        sim.run(10.0)
        # every row — pre-existing and added — spans every interval
        for wid in [0, 1, 2, added.worker_id]:
            F = monitor.feature_matrix(wid)
            y = monitor.target_series(wid)
            assert F.shape[0] == monitor.n_intervals
            assert y.shape[0] == monitor.n_intervals
        # the newcomer's pre-join history is zero padding
        F_new = monitor.feature_matrix(added.worker_id)
        assert not F_new[: n_before].any()
        assert F_new[n_before + 1 :].any()
        assert added.worker_id in monitor.worker_ids

    def test_departed_worker_goes_inactive_not_deleted(self):
        sim, controller = self._controlled_sim()
        sim.run(10.0)
        monitor = controller.monitor
        sim.cluster.elastic.remove_worker(2)
        sim.run(10.0)
        assert 2 not in monitor.worker_ids
        assert 2 not in monitor.latest_backlogs()
        assert 2 not in monitor.latest_latencies()
        # ...but its row still spans all intervals (alignment) and its
        # post-departure tail is zero-padded features
        F = monitor.feature_matrix(2)
        assert F.shape[0] == monitor.n_intervals
        assert not F[-3:].any()
        # training windows never cross into the padded tail
        X, y = monitor.pooled_training_data(window=2)
        assert np.isfinite(X).all() and np.isfinite(y).all()

    def test_controller_replans_over_new_membership(self):
        sim, controller = self._controlled_sim()
        sim.run(10.0)
        added = sim.cluster.elastic.add_worker()
        sim.run(10.0)
        assert controller._task_worker == {
            task_id: ex.worker.worker_id
            for task_id, ex in sim.cluster.executors.items()
        }
        assert any(
            ex.worker.worker_id == added.worker_id
            for ex in sim.cluster.executors.values()
        )
        assert_conserved(sim)


class TestControlActionCopy:
    def test_recorded_crash_set_does_not_alias_caller(self):
        sim, controller = TestMonitorAlignment()._controlled_sim()
        sim.run(4.0)
        crashed = {1}
        controller._plan_and_apply(sim.env.now, {}, set(), crashed)
        action = controller.actions[-1]
        crashed.add(2)  # caller keeps mutating its own set
        assert action.crashed == {1}
        assert action.crashed is not crashed


class TestAdmissionControl:
    def test_admission_rate_throttles_spouts(self):
        fast = build_sim(rate=200.0)
        fast.run(10.0)
        opened_full, *_ = accounting(fast)

        throttled = build_sim(rate=200.0)
        throttled.cluster.set_admission_rate(0.5)
        assert throttled.cluster.admission_rate() == 0.5
        throttled.run(10.0)
        opened_half, *_ = accounting(throttled)
        assert opened_half < 0.7 * opened_full

    def test_admission_rate_validates(self):
        sim = build_sim()
        with pytest.raises(ValueError):
            sim.cluster.set_admission_rate(0.0)
        with pytest.raises(ValueError):
            sim.cluster.set_admission_rate(1.5)

    def test_full_rate_is_bitwise_noop(self):
        a = build_sim()
        a.run(15.0)
        b = build_sim()
        b.cluster.set_admission_rate(1.0)
        b.run(15.0)
        assert accounting(a) == accounting(b)
