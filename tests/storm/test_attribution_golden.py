"""Golden-file pin of the span-tree attribution summary.

``tests/golden/attribution_smoke.json`` holds the per-run ``attribution``
sections of a small traced chaos campaign (2 × 60 s of ``url_count``
under two message-loss faults, so replay subtrees are exercised).  The
campaign is replayed here under the heap scheduler, the calendar
scheduler, the timing-wheel scheduler, and sharded across two worker
processes — all four must
reproduce the golden *byte-for-byte*, pinning both the determinism of
the trace pipeline and the bitwise exact-sum invariant
(``exact: true`` inside the golden is the acker-latency identity
holding for every one of the ~14k attributed trees).

Regenerate after an intentional change with::

    PYTHONPATH=src python - <<'PY'
    from repro.experiments.reliability import run_chaos_campaign
    from repro.obs.report import report_to_json
    from repro.storm import ChaosSpec
    report = run_chaos_campaign(
        app="url_count", spec=ChaosSpec(crashes=0, losses=2),
        seed=11, runs=2, horizon=60.0, base_rate=120.0,
        trace=True, trace_capacity=1 << 20, metrics=True)
    golden = {"schema": "repro-attribution-golden/1", "campaign_seed": 11,
              "runs": [r.run_report["attribution"] for r in report.runs]}
    open("tests/golden/attribution_smoke.json", "w").write(
        report_to_json(golden))
    PY
"""

import json
from pathlib import Path

import pytest

from repro.experiments.reliability import run_chaos_campaign
from repro.obs.report import report_to_json
from repro.storm import ChaosSpec

GOLDEN = (
    Path(__file__).resolve().parents[1] / "golden" / "attribution_smoke.json"
)


def campaign_attribution(scheduler: str, jobs: int) -> str:
    report = run_chaos_campaign(
        app="url_count",
        spec=ChaosSpec(crashes=0, losses=2),
        seed=11,
        runs=2,
        horizon=60.0,
        base_rate=120.0,
        trace=True,
        trace_capacity=1 << 20,
        metrics=True,
        scheduler=scheduler,
        jobs=jobs,
    )
    return report_to_json({
        "schema": "repro-attribution-golden/1",
        "campaign_seed": 11,
        "runs": [r.run_report["attribution"] for r in report.runs],
    })


@pytest.mark.parametrize(
    "scheduler,jobs",
    [("heap", 1), ("calendar", 1), ("wheel", 1), ("heap", 2)],
    ids=["heap-serial", "calendar-serial", "wheel-serial", "heap-jobs2"],
)
def test_attribution_matches_golden(scheduler, jobs):
    assert campaign_attribution(scheduler, jobs) == GOLDEN.read_text(), (
        "span-tree attribution drifted from "
        "tests/golden/attribution_smoke.json under "
        f"scheduler={scheduler} jobs={jobs}; if intentional, regenerate "
        "it (see module docstring) and commit"
    )


def test_golden_is_wellformed_and_exact():
    # Guard against a hand-edited or truncated golden file.
    data = json.loads(GOLDEN.read_text())
    assert data["campaign_seed"] == 11
    assert len(data["runs"]) == 2
    for run in data["runs"]:
        assert run["schema"] == "repro-attribution/1"
        assert run["exact"] is True  # the bitwise invariant, pinned
        assert run["attributed"] > 1000
        assert run["replays"] > 0  # loss faults actually replayed tuples
        assert run["incomplete"] == 0  # the ring held the whole run
        shares = run["shares"]
        assert abs(sum(shares.values()) - 1.0) < 1e-12
