"""Overlapping faults must compose: reverts restore the original state
regardless of which fault window closes first.

Regression for the last-revert-wins family of bugs: SlowdownFault.revert
used to reset ``slow_factor`` to 1.0 unconditionally and PauseFault's
first revert resumed the worker, so two overlapping faults on the same
target left wrong state (or cut the second fault short) once the first
one ended.  Faults now act through ref-counted / stacked holds.
"""

import pytest

from repro.storm import (
    CpuHogFault,
    MessageLossFault,
    NetworkDelayFault,
    NodeSpec,
    PauseFault,
    SlowdownFault,
    StormSimulation,
    TopologyBuilder,
    TopologyConfig,
)
from tests.storm.helpers import CounterSpout, SlowBolt

NODES = (NodeSpec("n0", cores=4, slots=2), NodeSpec("n1", cores=4, slots=2))


def sim_with(faults):
    b = TopologyBuilder()
    b.set_spout("src", CounterSpout(rate=100), parallelism=1)
    b.set_bolt("work", SlowBolt(cost=1e-3), parallelism=2).shuffle_grouping(
        "src"
    )
    topo = b.build("overlap", TopologyConfig(num_workers=2))
    return StormSimulation(topo, nodes=NODES, seed=0, faults=faults)


# --- CPU hog (the satellite's named case) --------------------------------------


def test_two_overlapping_cpu_hogs_restore_external_load():
    # Windows: [2, 10) demand 2.0 and [4, 6) demand 1.5 — the inner fault
    # reverts first; the outer revert must land back at exactly 0.
    sim = sim_with([
        CpuHogFault(start=2, duration=8, node_name="n0", demand=2.0),
        CpuHogFault(start=4, duration=2, node_name="n0", demand=1.5),
    ])
    node = next(n for n in sim.cluster.nodes if n.name == "n0")
    sim.run(duration=5)  # t=5: both active
    assert node.external_load == pytest.approx(3.5)
    sim.run(duration=3)  # t=8: inner reverted
    assert node.external_load == pytest.approx(2.0)
    sim.run(duration=4)  # t=12: both reverted
    assert node.external_load == pytest.approx(0.0)


def test_two_overlapping_cpu_hogs_outer_reverts_first():
    # Windows: [2, 5) demand 2.0 and [3, 8) demand 1.5 — the *first*
    # applied fault reverts first (the classic last-revert-wins shape).
    sim = sim_with([
        CpuHogFault(start=2, duration=3, node_name="n0", demand=2.0),
        CpuHogFault(start=3, duration=5, node_name="n0", demand=1.5),
    ])
    node = next(n for n in sim.cluster.nodes if n.name == "n0")
    sim.run(duration=4)  # t=4: both active
    assert node.external_load == pytest.approx(3.5)
    sim.run(duration=2)  # t=6: first reverted, second still on
    assert node.external_load == pytest.approx(1.5)
    sim.run(duration=4)  # t=10: clean
    assert node.external_load == pytest.approx(0.0)


# --- slowdown (the actual last-revert-wins bug) ---------------------------------


def test_overlapping_slowdowns_stack_and_restore():
    # [2, 10) x4 and [4, 6) x3: while both are active the worker runs at
    # 12x; after the inner reverts it must be back at 4x, not 1x.
    sim = sim_with([
        SlowdownFault(start=2, duration=8, worker_id=0, factor=4.0),
        SlowdownFault(start=4, duration=2, worker_id=0, factor=3.0),
    ])
    w = sim.cluster.workers[0]
    sim.run(duration=5)  # t=5: both active
    assert w.slow_factor == pytest.approx(12.0)
    sim.run(duration=3)  # t=8: inner reverted — regression: used to be 1.0
    assert w.slow_factor == pytest.approx(4.0)
    sim.run(duration=4)  # t=12
    assert w.slow_factor == pytest.approx(1.0)


def test_overlapping_slowdowns_outer_reverts_first():
    sim = sim_with([
        SlowdownFault(start=2, duration=3, worker_id=0, factor=4.0),
        SlowdownFault(start=3, duration=6, worker_id=0, factor=3.0),
    ])
    w = sim.cluster.workers[0]
    sim.run(duration=4)
    assert w.slow_factor == pytest.approx(12.0)
    sim.run(duration=2)  # t=6: first reverted, second must survive
    assert w.slow_factor == pytest.approx(3.0)
    sim.run(duration=4)  # t=10
    assert w.slow_factor == pytest.approx(1.0)


# --- pause ----------------------------------------------------------------------


def test_overlapping_pauses_resume_only_after_both_revert():
    # [2, 8) and [3, 5): the inner revert at t=5 must NOT resume the
    # worker (regression: it used to).
    sim = sim_with([
        PauseFault(start=2, duration=6, worker_id=0),
        PauseFault(start=3, duration=2, worker_id=0),
    ])
    w = sim.cluster.workers[0]
    sim.run(duration=4)  # t=4: both active
    assert w.paused
    sim.run(duration=2)  # t=6: inner reverted, still paused
    assert w.paused
    sim.run(duration=3)  # t=9: both reverted
    assert not w.paused


# --- transport chaos ------------------------------------------------------------


def test_overlapping_loss_faults_combine_and_restore():
    sim = sim_with([
        MessageLossFault(start=1, duration=8, probability=0.1),
        MessageLossFault(start=2, duration=2, probability=0.5),
    ])
    tp = sim.cluster.transport
    sim.run(duration=3)  # t=3: both active — independent-drop combination
    assert tp.loss_probability == pytest.approx(1 - 0.9 * 0.5)
    sim.run(duration=3)  # t=6: only the first remains
    assert tp.loss_probability == pytest.approx(0.1)
    sim.run(duration=5)  # t=11: clean
    assert tp.loss_probability == 0.0


def test_overlapping_delay_faults_add_and_restore():
    sim = sim_with([
        NetworkDelayFault(start=1, duration=8, extra_delay=0.05),
        NetworkDelayFault(start=2, duration=2, extra_delay=0.02),
    ])
    tp = sim.cluster.transport
    sim.run(duration=3)
    assert tp.extra_delay_mean == pytest.approx(0.07)
    sim.run(duration=3)
    assert tp.extra_delay_mean == pytest.approx(0.05)
    sim.run(duration=5)
    assert tp.extra_delay_mean == 0.0


# --- mixed kinds on one worker --------------------------------------------------


def test_slowdown_survives_overlapping_crash_cycle():
    # Crash [3, 5) inside a slowdown [2, 10): the restart must not clear
    # the slowdown, and the crash flag must not linger past restart.
    sim = sim_with([
        SlowdownFault(start=2, duration=8, worker_id=0, factor=5.0),
        # worker 1 crash keeps the cluster's only spout (worker 0) alive
        SlowdownFault(start=3, duration=2, worker_id=1, factor=2.0),
    ])
    w0, w1 = sim.cluster.workers[0], sim.cluster.workers[1]
    sim.run(duration=4)
    assert w0.slow_factor == pytest.approx(5.0)
    assert w1.slow_factor == pytest.approx(2.0)
    sim.run(duration=2)
    assert w1.slow_factor == pytest.approx(1.0)
    sim.run(duration=5)
    assert w0.slow_factor == pytest.approx(1.0)


def test_worker_hold_release_underflow_raises():
    sim = sim_with([])
    w = sim.cluster.workers[0]
    with pytest.raises(RuntimeError):
        w.release_pause()
    with pytest.raises(ValueError):
        w.release_slowdown(3.0)  # no such hold
