"""End-to-end integration tests of the Storm simulator.

These exercise the full stack: spout pacing, flow control, routing,
service/interference, acking, replay, backpressure, and metrics.
"""

import numpy as np
import pytest

from repro.storm import (
    Bolt,
    Emission,
    NodeSpec,
    PauseFault,
    SlowdownFault,
    Spout,
    StormSimulation,
    TopologyBuilder,
    TopologyConfig,
)
from tests.storm.helpers import CounterSpout, PassBolt, SinkBolt, SlowBolt


NODES = (
    NodeSpec("n0", cores=4, slots=2),
    NodeSpec("n1", cores=4, slots=2),
)


def linear_topology(rate=100.0, limit=None, workers=2, **cfg):
    b = TopologyBuilder()
    b.set_spout("src", CounterSpout(rate=rate, limit=limit), parallelism=1)
    b.set_bolt("mid", PassBolt(), parallelism=2).shuffle_grouping("src")
    b.set_bolt("sink", SinkBolt(), parallelism=2).shuffle_grouping("mid")
    return b.build("linear", TopologyConfig(num_workers=workers, **cfg))


def executed_of(sim, component):
    return sum(
        ex.executed_count
        for ex in sim.cluster.executors.values()
        if ex.component_id == component
    )


def test_every_emitted_tuple_is_acked():
    topo = linear_topology(rate=200, limit=500)
    sim = StormSimulation(topo, nodes=NODES, seed=1)
    res = sim.run(duration=20)
    assert res.acked == 500
    assert res.failed == 0
    assert executed_of(sim, "mid") == 500
    assert executed_of(sim, "sink") == 500


def test_complete_latency_positive_and_bounded():
    topo = linear_topology(rate=100, limit=200)
    sim = StormSimulation(topo, nodes=NODES, seed=2)
    res = sim.run(duration=10)
    assert res.complete_latencies.size == 200
    assert np.all(res.complete_latencies > 0)
    # Light load: latency must be near the bare service path, far below 1s.
    assert res.latency_percentile(0.99) < 0.1


def test_throughput_matches_offered_load():
    topo = linear_topology(rate=300)
    sim = StormSimulation(topo, nodes=NODES, seed=3)
    res = sim.run(duration=30)
    assert res.mean_throughput(after=5) == pytest.approx(300, rel=0.1)


def test_deterministic_given_seed():
    r1 = StormSimulation(linear_topology(rate=150), nodes=NODES, seed=42).run(10)
    r2 = StormSimulation(linear_topology(rate=150), nodes=NODES, seed=42).run(10)
    assert r1.acked == r2.acked
    assert np.allclose(r1.complete_latencies, r2.complete_latencies)


def test_different_seeds_differ():
    r1 = StormSimulation(linear_topology(rate=150), nodes=NODES, seed=1).run(10)
    r2 = StormSimulation(linear_topology(rate=150), nodes=NODES, seed=2).run(10)
    assert not np.allclose(
        r1.complete_latencies[: min(50, r2.complete_latencies.size)],
        r2.complete_latencies[: min(50, r1.complete_latencies.size)],
    )


def test_spout_receives_ack_callbacks():
    topo = linear_topology(rate=100, limit=50)
    sim = StormSimulation(topo, nodes=NODES, seed=4)
    sim.run(duration=10)
    spout_ex = next(
        ex for ex in sim.cluster.executors.values() if ex.component_id == "src"
    )
    assert len(spout_ex.spout.acks) == 50
    assert all(lat > 0 for _m, lat in spout_ex.spout.acks)


def test_max_spout_pending_limits_in_flight():
    # A sink far slower than the source: in-flight must cap at max pending.
    b = TopologyBuilder()
    b.set_spout("src", CounterSpout(rate=1000), parallelism=1)
    b.set_bolt("slow", SlowBolt(cost=0.05), parallelism=1).shuffle_grouping("src")
    topo = b.build(
        "capped",
        TopologyConfig(num_workers=1, max_spout_pending=10, message_timeout=1000),
    )
    sim = StormSimulation(topo, nodes=NODES, seed=5)
    sim.run(duration=5)
    spout_ex = next(
        ex for ex in sim.cluster.executors.values() if ex.component_id == "src"
    )
    # ~20 tuples/s drain rate; emitted must be tiny vs the 1000/s offer.
    assert spout_ex.executed_count < 150
    assert spout_ex.in_flight <= 10


def test_timeout_triggers_replay_and_eventual_ack():
    # A transient worker pause makes in-flight tuples time out and fail;
    # after recovery the replays complete, so at-least-once holds.
    b = TopologyBuilder()
    b.set_spout("src", CounterSpout(rate=50, limit=30), parallelism=1)
    b.set_bolt("slow", SlowBolt(cost=0.005), parallelism=1).shuffle_grouping("src")
    topo = b.build(
        "flaky",
        TopologyConfig(
            num_workers=1,
            message_timeout=0.5,
            ack_sweep_interval=0.1,
            max_spout_pending=64,
            max_replays=50,
        ),
    )
    sim = StormSimulation(
        topo,
        nodes=NODES,
        seed=6,
        faults=[PauseFault(start=0.1, duration=1.9, worker_id=0)],
    )
    res = sim.run(duration=60)
    assert res.failed > 0  # timeouts happened
    spout_ex = next(
        ex for ex in sim.cluster.executors.values() if ex.component_id == "src"
    )
    assert spout_ex.replayed_count > 0
    # All 30 distinct messages eventually acked (replay works).
    acked_ids = {m for m, _ in spout_ex.spout.acks}
    assert len(acked_ids) == 30


def test_unreliable_tuples_skip_ledger():
    b = TopologyBuilder()
    b.set_spout("src", CounterSpout(rate=100, limit=50, reliable=False))
    b.set_bolt("sink", SinkBolt()).shuffle_grouping("src")
    topo = b.build("unreliable", TopologyConfig(num_workers=1))
    sim = StormSimulation(topo, nodes=NODES, seed=7)
    res = sim.run(duration=5)
    assert res.acked == 0 and res.failed == 0
    assert executed_of(sim, "sink") == 50


def test_fields_grouping_keeps_key_locality():
    class KeySpout(Spout):
        outputs = {"default": ("key",)}

        def __init__(self):
            self.i = 0

        def open(self, ctx):
            self.rng = ctx.rng

        def inter_arrival(self):
            return 0.005 if self.i < 400 else None

        def next_tuple(self):
            self.i += 1
            return Emission(values=(f"k{self.i % 10}",), msg_id=self.i)

    class KeySink(Bolt):
        outputs = {}

        def __init__(self):
            self.keys = set()

        def execute(self, tup, collector):
            self.keys.add(tup.value("key"))

    b = TopologyBuilder()
    b.set_spout("src", KeySpout())
    b.set_bolt("sink", KeySink(), parallelism=4).fields_grouping("src", ["key"])
    topo = b.build("keyed", TopologyConfig(num_workers=2))
    sim = StormSimulation(topo, nodes=NODES, seed=8)
    sim.run(duration=10)
    sinks = [
        ex for ex in sim.cluster.executors.values() if ex.component_id == "sink"
    ]
    all_key_sets = [ex.bolt.keys for ex in sinks]
    # Each key lands in exactly one sink task.
    for key in {f"k{i}" for i in range(10)}:
        assert sum(key in ks for ks in all_key_sets) == 1


def test_all_grouping_replicates():
    b = TopologyBuilder()
    b.set_spout("src", CounterSpout(rate=100, limit=40))
    b.set_bolt("bcast", SinkBolt(), parallelism=3).all_grouping("src")
    topo = b.build("bcast", TopologyConfig(num_workers=2))
    sim = StormSimulation(topo, nodes=NODES, seed=9)
    res = sim.run(duration=5)
    assert executed_of(sim, "bcast") == 120  # 40 tuples × 3 replicas
    assert res.acked == 40  # each tree completes once all replicas ack


def test_interference_slows_colocated_worker():
    # Two separate single-bolt pipelines placed on ONE node: raising the
    # load of pipeline A must inflate pipeline B's service latency.
    def build(rate_a):
        b = TopologyBuilder()
        b.set_spout("srcA", CounterSpout(rate=rate_a), parallelism=1)
        b.set_spout("srcB", CounterSpout(rate=50), parallelism=1)
        b.set_bolt("boltA", SlowBolt(cost=8e-3), parallelism=2).shuffle_grouping(
            "srcA"
        )
        b.set_bolt("boltB", SlowBolt(cost=8e-3), parallelism=2).shuffle_grouping(
            "srcB"
        )
        return b.build("pair", TopologyConfig(num_workers=2))

    one_node = (NodeSpec("solo", cores=2, slots=2),)

    def mean_service_b(rate_a, seed=11):
        sim = StormSimulation(build(rate_a), nodes=one_node, seed=seed)
        sim.run(duration=20)
        bolts = [
            ex
            for ex in sim.cluster.executors.values()
            if ex.component_id == "boltB"
        ]
        total = sum(ex.service_time_sum for ex in bolts)
        count = sum(ex.executed_count for ex in bolts)
        return total / count

    quiet = mean_service_b(rate_a=10)
    noisy = mean_service_b(rate_a=220)
    assert noisy > quiet * 1.15  # co-location interference is visible


def test_backpressure_grows_queue_of_slow_bolt():
    b = TopologyBuilder()
    b.set_spout("src", CounterSpout(rate=500), parallelism=1)
    b.set_bolt("slow", SlowBolt(cost=0.02), parallelism=1).shuffle_grouping("src")
    topo = b.build(
        "pressured",
        TopologyConfig(num_workers=1, max_spout_pending=5000, message_timeout=1e6),
    )
    sim = StormSimulation(topo, nodes=NODES, seed=12)
    res = sim.run(duration=10)
    last = res.snapshots[-1]
    slow_stats = [
        es for es in last.executors.values() if es.component_id == "slow"
    ]
    assert slow_stats[0].backlog > 100  # queue piled up


def test_stop_halts_executors():
    topo = linear_topology(rate=100)
    sim = StormSimulation(topo, nodes=NODES, seed=13)
    sim.run(duration=5)
    before = executed_of(sim, "sink")
    sim.cluster.stop()
    sim.run(duration=5)
    after = executed_of(sim, "sink")
    # Executors stop at the next loop turn: negligible extra processing.
    assert after - before <= 5
