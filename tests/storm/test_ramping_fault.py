"""Tests for RampingHogFault: profile shape and injector staircase."""

import pytest

from repro.storm import NodeSpec, RampingHogFault, StormSimulation, TopologyBuilder
from repro.storm.topology import TopologyConfig
from tests.storm.helpers import CounterSpout, SinkBolt


def make_fault(**kw):
    defaults = dict(
        start=10.0, duration=30.0, node_name="n0", peak_demand=4.0, ramp=10.0,
        step_interval=1.0,
    )
    defaults.update(kw)
    return RampingHogFault(**defaults)


def test_demand_profile_shape():
    f = make_fault()
    assert f.demand_at(-1) == 0.0
    assert f.demand_at(0) == 0.0
    assert f.demand_at(5) == pytest.approx(2.0)  # halfway up the ramp
    assert f.demand_at(10) == pytest.approx(4.0)  # plateau start
    assert f.demand_at(15) == pytest.approx(4.0)  # plateau
    assert f.demand_at(25) == pytest.approx(2.0)  # halfway down
    assert f.demand_at(30) == 0.0
    assert f.demand_at(31) == 0.0


def test_zero_ramp_is_square_wave():
    f = make_fault(ramp=0.0)
    assert f.demand_at(0.0) == 4.0
    assert f.demand_at(29.9) == 4.0


def sim_with(fault):
    b = TopologyBuilder()
    b.set_spout("src", CounterSpout(rate=50))
    b.set_bolt("sink", SinkBolt()).shuffle_grouping("src")
    topo = b.build("t", TopologyConfig(num_workers=1))
    return StormSimulation(
        topo, nodes=[NodeSpec("n0", cores=4, slots=2)], seed=0, faults=[fault]
    )


def test_injector_staircases_node_load():
    sim = sim_with(make_fault())
    node = sim.cluster.nodes[0]
    sim.run(duration=14)  # 4 s into the plateau? no: t=14 -> ramp done at 20
    # t = 14 is 4 s after fault start: still ramping, load ~1.6
    assert 1.0 < node.external_load < 2.4
    sim.run(duration=12)  # t=26: plateau (20..30)
    assert node.external_load == pytest.approx(4.0, abs=0.5)
    sim.run(duration=20)  # t=46: fully reverted
    assert node.external_load == pytest.approx(0.0, abs=1e-9)


def test_injector_cleans_up_exactly():
    # Even with a step interval that does not divide the duration, the
    # contribution is fully withdrawn at the end (no residual load).
    sim = sim_with(make_fault(duration=17.3, ramp=5.0, step_interval=1.9))
    node = sim.cluster.nodes[0]
    sim.run(duration=60)
    assert node.external_load == pytest.approx(0.0, abs=1e-9)


def test_validation():
    sim = sim_with(make_fault())  # builds the cluster we validate against
    cluster = sim.cluster
    with pytest.raises(ValueError):
        make_fault(node_name="ghost").validate(cluster)
    with pytest.raises(ValueError):
        make_fault(peak_demand=0).validate(cluster)
    with pytest.raises(ValueError):
        make_fault(ramp=20.0).validate(cluster)  # 2*ramp > duration
    with pytest.raises(ValueError):
        make_fault(step_interval=0).validate(cluster)


def test_ramping_hog_slows_colocated_service():
    from tests.storm.helpers import SlowBolt
    from repro.storm import TopologyBuilder

    def run(with_fault):
        b = TopologyBuilder()
        b.set_spout("src", CounterSpout(rate=100))
        b.set_bolt("work", SlowBolt(cost=5e-3), parallelism=2).shuffle_grouping("src")
        topo = b.build("t", TopologyConfig(num_workers=2))
        faults = [make_fault(start=5, duration=40, peak_demand=6.0, ramp=10.0)] if with_fault else []
        sim = StormSimulation(
            topo, nodes=[NodeSpec("n0", cores=2, slots=2)], seed=1, faults=faults
        )
        sim.run(duration=45)
        bolts = [e for e in sim.cluster.executors.values() if e.component_id == "work"]
        return sum(e.service_time_sum for e in bolts) / sum(
            e.executed_count for e in bolts
        )

    assert run(True) > run(False) * 1.5
