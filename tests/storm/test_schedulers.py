"""Tests for the alternative schedulers."""

import pytest

from repro.des import Environment
from repro.storm import Cluster, NodeSpec, TopologyBuilder, TopologyConfig
from repro.storm.node import Node
from repro.storm.schedulers import PackingScheduler, ResourceAwareScheduler
from tests.storm.helpers import CounterSpout, SinkBolt, SlowBolt


def build_topology(workers=4):
    b = TopologyBuilder()
    b.set_spout("src", CounterSpout(rate=10), parallelism=2)
    b.set_bolt("heavy", SlowBolt(cost=10e-3), parallelism=4).shuffle_grouping("src")
    b.set_bolt("light", SinkBolt(), parallelism=4).shuffle_grouping("src")
    return b.build("t", TopologyConfig(num_workers=workers))


def test_packing_fills_first_node_first():
    env = Environment()
    nodes = [Node(env, f"n{i}", cores=4, slots=2) for i in range(3)]
    placed = PackingScheduler().place_workers(4, nodes)
    assert [n.name for n in placed] == ["n0", "n0", "n1", "n1"]


def test_packing_rejects_overcommit():
    env = Environment()
    nodes = [Node(env, "n0", cores=4, slots=1)]
    with pytest.raises(ValueError):
        PackingScheduler().place_workers(3, nodes)


def submit_with(scheduler):
    env = Environment()
    cluster = Cluster(
        env,
        [NodeSpec("n0", slots=2), NodeSpec("n1", slots=2)],
        seed=0,
        scheduler=scheduler,
    )
    cluster.submit(build_topology())
    return cluster


def test_resource_aware_balances_heavy_bolts():
    cluster = submit_with(ResourceAwareScheduler())
    heavy_per_worker = []
    for w in cluster.workers:
        n = sum(
            1 for ex in w.executors if ex.component_id == "heavy"
        )
        heavy_per_worker.append(n)
    # 4 heavy tasks over 4 workers: exactly one each (LPT spreads them).
    assert heavy_per_worker == [1, 1, 1, 1]


def test_resource_aware_assigns_every_task():
    cluster = submit_with(ResourceAwareScheduler())
    assert len(cluster.executors) == 10  # 2 + 4 + 4


def test_resource_aware_deterministic():
    c1 = submit_with(ResourceAwareScheduler())
    c2 = submit_with(ResourceAwareScheduler())
    m1 = {t: ex.worker.worker_id for t, ex in c1.executors.items()}
    m2 = {t: ex.worker.worker_id for t, ex in c2.executors.items()}
    assert m1 == m2


def test_even_scheduler_can_concentrate_heavy_bolts():
    # The contrast that motivates the resource-aware variant: round-robin
    # ignores cost, so worker loads (sum of task costs) can be unequal.
    cluster = submit_with(None)  # default EvenScheduler

    def load(w):
        return sum(
            getattr(ex.bolt, "cost", 1e-4) if hasattr(ex, "bolt") else 1e-4
            for ex in w.executors
        )

    ra = submit_with(ResourceAwareScheduler())
    spread_even = max(load(w) for w in cluster.workers) - min(
        load(w) for w in cluster.workers
    )
    spread_ra = max(load(w) for w in ra.workers) - min(
        load(w) for w in ra.workers
    )
    assert spread_ra <= spread_even + 1e-12
