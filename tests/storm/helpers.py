"""Shared minimal components for Storm-simulator tests."""

from typing import Optional

from repro.storm import Bolt, Emission, Spout


class CounterSpout(Spout):
    """Emits consecutive integers at a fixed rate with unique msg ids."""

    outputs = {"default": ("n",)}

    def __init__(self, rate: float = 100.0, limit: Optional[int] = None,
                 reliable: bool = True):
        self.rate = rate
        self.limit = limit
        self.reliable = reliable
        self.emitted = 0
        self.acks = []
        self.fails = []

    def open(self, ctx):
        self.ctx = ctx

    def inter_arrival(self):
        if self.limit is not None and self.emitted >= self.limit:
            return None  # exhausted: stop the executor loop
        return 1.0 / self.rate

    def next_tuple(self):
        self.emitted += 1
        msg_id = (self.ctx.task_id, self.emitted) if self.reliable else None
        return Emission(values=(self.emitted,), msg_id=msg_id)

    def ack(self, msg_id, latency):
        self.acks.append((msg_id, latency))

    def fail(self, msg_id):
        self.fails.append(msg_id)


class PassBolt(Bolt):
    """Re-emits its input value, anchored (keeps the tuple tree alive)."""

    outputs = {"default": ("n",)}
    default_cpu_cost = 0.5e-3

    def execute(self, tup, collector):
        collector.emit((tup[0],), anchors=[tup])


class SinkBolt(Bolt):
    """Counts what it sees; the end of the line."""

    outputs = {}
    default_cpu_cost = 0.2e-3

    def __init__(self):
        self.seen = []

    def execute(self, tup, collector):
        self.seen.append(tup.values)


class SlowBolt(Bolt):
    """Configurable constant service cost."""

    outputs = {}

    def __init__(self, cost: float):
        self.cost = cost

    def cpu_cost(self, tup):
        return self.cost

    def execute(self, tup, collector):
        pass
