"""Tests for the XOR ack ledger: completion, timeout, failure paths."""

import pytest

from repro.des import Environment
from repro.storm.acker import AckLedger


def make(env=None, timeout=10.0, sweep=1.0):
    env = env or Environment()
    return env, AckLedger(env, message_timeout=timeout, sweep_interval=sweep)


def test_single_edge_tree_completes():
    env, ledger = make()
    acks = []
    ledger.register_spout(0, lambda m, lat: acks.append((m, lat)), lambda m: None)
    ledger.init_tree(root_id=1, spout_task=0, msg_id="m1", edge_id=0)
    ledger.emit(1, 100)
    env.run(until=3.0)
    ledger.ack(1, 100)
    assert acks == [("m1", 3.0)]
    assert ledger.in_flight == 0
    assert ledger.acked_count == 1


def test_multi_edge_tree_requires_all_acks():
    env, ledger = make()
    acks = []
    ledger.register_spout(0, lambda m, lat: acks.append(m), lambda m: None)
    ledger.init_tree(1, 0, "m1", edge_id=0)
    ledger.emit(1, 100)
    ledger.emit(1, 101)
    ledger.ack(1, 100)
    assert acks == []  # edge 101 still outstanding
    ledger.ack(1, 101)
    assert acks == ["m1"]


def test_bolt_chain_emit_then_ack():
    # Mirrors a spout -> boltA -> boltB chain: A acks its input while
    # emitting a child edge; the tree completes only after B acks.
    env, ledger = make()
    acks = []
    ledger.register_spout(0, lambda m, lat: acks.append(m), lambda m: None)
    ledger.init_tree(1, 0, "m", edge_id=0)
    ledger.emit(1, 10)  # spout tuple -> boltA
    ledger.emit(1, 20)  # boltA emits child -> boltB
    ledger.ack(1, 10)  # boltA acks its input
    assert acks == []
    ledger.ack(1, 20)  # boltB acks
    assert acks == ["m"]


def test_duplicate_root_rejected():
    env, ledger = make()
    ledger.init_tree(1, 0, "m", edge_id=5)
    with pytest.raises(ValueError):
        ledger.init_tree(1, 0, "m2", edge_id=6)


def test_timeout_fails_stuck_tree():
    env, ledger = make(timeout=5.0, sweep=1.0)
    fails = []
    ledger.register_spout(0, lambda m, lat: None, lambda m: fails.append((m, env.now)))
    ledger.init_tree(1, 0, "stuck", edge_id=7)
    env.run(until=20.0)
    assert len(fails) == 1
    msg, when = fails[0]
    assert msg == "stuck"
    assert 5.0 <= when <= 6.5  # failed by the first sweep past the deadline
    assert ledger.failed_count == 1
    assert ledger.in_flight == 0


def test_ack_after_timeout_is_ignored():
    env, ledger = make(timeout=2.0)
    fails, acks = [], []
    ledger.register_spout(0, lambda m, lat: acks.append(m), lambda m: fails.append(m))
    ledger.init_tree(1, 0, "late", edge_id=9)
    env.run(until=5.0)
    assert fails == ["late"]
    ledger.ack(1, 9)  # straggler ack
    assert acks == []
    assert ledger.acked_count == 0


def test_explicit_fail():
    env, ledger = make()
    fails = []
    ledger.register_spout(0, lambda m, lat: None, lambda m: fails.append(m))
    ledger.init_tree(1, 0, "bad", edge_id=3)
    ledger.fail(1)
    assert fails == ["bad"]
    ledger.fail(1)  # idempotent
    assert fails == ["bad"]


def test_emit_on_completed_tree_is_noop():
    env, ledger = make()
    ledger.register_spout(0, lambda m, lat: None, lambda m: None)
    ledger.init_tree(1, 0, "m", edge_id=0)
    ledger.emit(1, 4)
    ledger.ack(1, 4)
    ledger.emit(1, 5)  # late anchor: tree is gone
    assert ledger.in_flight == 0


def test_completions_recorded_for_metrics():
    env, ledger = make(timeout=2.0)
    ledger.register_spout(0, lambda m, lat: None, lambda m: None)
    ledger.init_tree(1, 0, "good", edge_id=0)
    ledger.emit(1, 11)
    ledger.ack(1, 11)
    ledger.init_tree(2, 0, "bad", edge_id=12)
    env.run(until=5.0)
    kinds = [(c.msg_id, c.acked) for c in ledger.completions]
    assert ("good", True) in kinds
    assert ("bad", False) in kinds


def test_latency_sum_accumulates():
    env, ledger = make()
    ledger.register_spout(0, lambda m, lat: None, lambda m: None)
    ledger.init_tree(1, 0, "a", edge_id=0)
    ledger.emit(1, 50)
    env.run(until=2.0)
    ledger.ack(1, 50)
    assert ledger.latency_sum == pytest.approx(2.0)


def test_interleaved_trees_independent():
    env, ledger = make()
    acks = []
    ledger.register_spout(0, lambda m, lat: acks.append(m), lambda m: None)
    for root in (1, 2, 3):
        ledger.init_tree(root, 0, f"m{root}", edge_id=0)
        ledger.emit(root, root * 100)
    ledger.ack(2, 200)
    assert acks == ["m2"]
    assert ledger.in_flight == 2
