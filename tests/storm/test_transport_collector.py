"""Unit tests for Transport latency selection, call_later, OutputCollector."""

import pytest

from repro.des import Environment, Store
from repro.storm.api import OutputCollector
from repro.storm.executor import Envelope, Transport, call_later
from repro.storm.node import Node
from repro.storm.topology import TopologyConfig
from repro.storm.tuples import Tuple
from repro.storm.worker import Worker


def make_transport():
    env = Environment()
    config = TopologyConfig(
        intra_worker_latency=1e-5,
        intra_node_latency=1e-4,
        inter_node_latency=1e-3,
    )
    t = Transport(env, config)
    n0 = Node(env, "n0")
    n1 = Node(env, "n1")
    w0 = Worker(env, 0, n0)
    w1 = Worker(env, 1, n0)  # same node as w0
    w2 = Worker(env, 2, n1)  # other node
    for task, worker in ((10, w0), (11, w1), (12, w2)):
        t.register(task, Store(env), worker)
    return env, t, (w0, w1, w2)


def test_latency_tiers():
    env, t, (w0, w1, w2) = make_transport()
    assert t.latency(w0, 10) == 1e-5  # same worker
    assert t.latency(w0, 11) == 1e-4  # same node, different worker
    assert t.latency(w0, 12) == 1e-3  # cross-node


def test_deliver_arrives_after_latency():
    env, t, (w0, _w1, _w2) = make_transport()
    tup = Tuple(values=(1,))
    t.deliver(w0, [(12, tup)])
    assert t.queues[12].level == 0  # not yet delivered
    env.run(until=2e-3)
    assert t.queues[12].level == 1
    env2_item = t.queues[12].items[0]
    assert isinstance(env2_item, Envelope)
    assert env2_item.tup is tup
    assert env2_item.enqueue_time == pytest.approx(1e-3)
    assert t.sent_count == 1


def test_deliver_preserves_per_link_order():
    env, t, (w0, _w1, _w2) = make_transport()
    for i in range(5):
        t.deliver(w0, [(11, Tuple(values=(i,)))])
    env.run(until=1.0)
    values = [e.tup[0] for e in t.queues[11].items]
    assert values == [0, 1, 2, 3, 4]


def test_call_later_runs_once_at_delay():
    env = Environment()
    hits = []
    call_later(env, 5.0, lambda: hits.append(env.now))
    env.run()
    assert hits == [5.0]


def test_call_later_zero_delay():
    env = Environment()
    hits = []
    call_later(env, 0.0, lambda: hits.append(env.now))
    env.run()
    assert hits == [0.0]


# --- batched delivery ----------------------------------------------------------------


def test_deliver_batch_matches_individual_delivers():
    tuples = [Tuple(values=(i,)) for i in range(6)]
    dests = [10, 11, 12, 11, 12, 10]

    env_a, ta, (w0a, _, _) = make_transport()
    for dst, tup in zip(dests, tuples):
        ta.deliver(w0a, [(dst, tup)])
    env_a.run(until=1.0)

    env_b, tb, (w0b, _, _) = make_transport()
    tb.deliver(w0b, list(zip(dests, tuples)))
    env_b.run(until=1.0)

    assert tb.sent_count == ta.sent_count == 6
    for task in (10, 11, 12):
        assert [e.tup[0] for e in tb.queues[task].items] == [
            e.tup[0] for e in ta.queues[task].items
        ]
        assert [e.enqueue_time for e in tb.queues[task].items] == [
            e.enqueue_time for e in ta.queues[task].items
        ]


def test_deliver_groups_by_latency_but_keeps_order():
    env, t, (w0, _, _) = make_transport()
    t.deliver(w0, [(11, Tuple(values=(i,))) for i in range(4)])
    env.run(until=1.0)
    assert [e.tup[0] for e in t.queues[11].items] == [0, 1, 2, 3]
    # same-node destinations arrive after the intra-node latency tier
    assert all(
        e.enqueue_time == pytest.approx(1e-4) for e in t.queues[11].items
    )


def test_deliver_draws_loss_per_tuple():
    import numpy as np

    env, t, (w0, _, _) = make_transport()
    t.rng = np.random.default_rng(0)
    t.loss_probability = 1.0
    # Cross-worker transfers are all lost; the same-worker one survives
    # (loss only applies between workers).
    t.deliver(
        w0, [(12, Tuple(values=(0,))), (10, Tuple(values=(1,))),
             (11, Tuple(values=(2,)))]
    )
    env.run(until=1.0)
    assert t.lost_count == 2
    assert t.sent_count == 3
    assert [e.tup[0] for e in t.queues[10].items] == [1]
    assert t.queues[11].level == 0 and t.queues[12].level == 0


def test_deliver_skips_crashed_destination():
    env, t, (w0, _w1, w2) = make_transport()
    w2.crashed = True
    t.deliver(w0, [(12, Tuple(values=(0,))), (11, Tuple(values=(1,)))])
    env.run(until=1.0)
    assert t.lost_count == 1
    assert [e.tup[0] for e in t.queues[11].items] == [1]
    assert t.queues[12].level == 0


# --- deprecated shims -------------------------------------------------------------


def test_send_shim_warns_and_delivers():
    env, t, (w0, _w1, _w2) = make_transport()
    tup = Tuple(values=(1,))
    with pytest.warns(DeprecationWarning, match="Transport.send is deprecated"):
        t.send(w0, 12, tup)
    env.run(until=2e-3)
    assert [e.tup for e in t.queues[12].items] == [tup]


def test_send_batch_shim_warns_and_delivers():
    env, t, (w0, _w1, _w2) = make_transport()
    sends = [(11, Tuple(values=(0,))), (12, Tuple(values=(1,)))]
    with pytest.warns(
        DeprecationWarning, match="Transport.send_batch is deprecated"
    ):
        t.send_batch(w0, sends)
    env.run(until=1.0)
    assert t.sent_count == 2
    assert t.queues[11].level == 1 and t.queues[12].level == 1


# --- collector --------------------------------------------------------------------


def test_collector_buffers_and_drains():
    col = OutputCollector()
    t1 = Tuple(values=(1,))
    col.emit((1, 2), anchors=[t1])
    col.emit((3,), stream="other", direct_task=7)
    col.ack(t1)
    emissions, acked, failed = col.drain()
    assert emissions[0] == ((1, 2), "default", (t1,), None)
    assert emissions[1] == ((3,), "other", (), 7)
    assert acked == [t1]
    assert failed == []
    # Drain resets.
    assert col.drain() == ([], [], [])


def test_collector_fail_path():
    col = OutputCollector()
    t = Tuple(values=(9,))
    col.fail(t)
    _, _, failed = col.drain()
    assert failed == [t]


def test_collector_emit_copies_values():
    col = OutputCollector()
    values = [1, 2]
    col.emit(values)
    values.append(3)  # mutating the caller's list must not leak
    emissions, _, _ = col.drain()
    assert emissions[0][0] == (1, 2)
