"""Compiled routing tables must be element-equal to per-tuple dispatch.

The emit hot path routes through closures compiled once per
``(source_task, stream)`` (:meth:`Grouping.compile_router`); the contract
is that for any tuple sequence and any permutation of the consumer task
list, the compiled router returns exactly the task ids the per-tuple
``choose`` dispatch would have — including stateful strategies (shuffle
cursors, partial-key load counters) and content-dependent ones
(fields hashing, unhashable keys).  A second set of tests pins the
executor-side plan lifecycle: lazy compilation, the declared-but-
unsubscribed empty plan, the undeclared-stream error, and invalidation
when the cluster's membership epoch moves (elastic add/remove).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment, Store
from repro.storm.acker import AckLedger
from repro.storm.executor import BaseExecutor, Transport
from repro.storm.grouping import (
    AllGrouping,
    DirectGrouping,
    DynamicGrouping,
    FieldsGrouping,
    GlobalGrouping,
    Grouping,
    LocalOrShuffleGrouping,
    PartialKeyGrouping,
    ShuffleGrouping,
    SplitRatioControl,
)
from repro.storm.node import Node
from repro.storm.topology import TopologyConfig
from repro.storm.tuples import Tuple
from repro.storm.worker import Worker

# Unique task-id lists plus a permutation seed: every property runs the
# compiled router against per-tuple dispatch on an arbitrary ordering of
# the same task set.
_TASKS = st.lists(
    st.integers(min_value=0, max_value=60), min_size=1, max_size=7,
    unique=True,
)
_PERM_SEED = st.integers(min_value=0, max_value=2**31 - 1)
_KEYS = st.lists(
    st.one_of(st.integers(min_value=-4, max_value=4), st.text(max_size=2)),
    max_size=30,
)

_CTX = dict(stream="s", source_component="c", source_task=1)


def _permuted(tasks, seed):
    rng = np.random.default_rng(seed)
    return [tasks[i] for i in rng.permutation(len(tasks))]


def _assert_parity(reference: Grouping, compiled: Grouping, values_seq,
                   fields=("k",)):
    """Drive per-tuple dispatch and the compiled router side by side.

    ``reference`` and ``compiled`` must be identically-initialised twin
    instances (stateful strategies advance cursors/counters as they
    route, so one instance cannot serve both sides).
    """
    router = compiled.compile_router(fields=fields, **_CTX)
    for values in values_seq:
        if reference.content_free:
            expected = reference.choose(None)
        else:
            expected = reference.choose(
                Tuple(values=values, stream="s", source_component="c",
                      source_task=1, fields=fields)
            )
        assert router(values, None) == expected


@settings(max_examples=60, deadline=None)
@given(tasks=_TASKS, seed=_PERM_SEED, keys=_KEYS)
def test_shuffle_router_matches_choose(tasks, seed, keys):
    perm = _permuted(tasks, seed)
    a = ShuffleGrouping(perm, np.random.default_rng(3))
    b = ShuffleGrouping(perm, np.random.default_rng(3))
    _assert_parity(a, b, [(k,) for k in keys])


@settings(max_examples=60, deadline=None)
@given(tasks=_TASKS, seed=_PERM_SEED, keys=_KEYS)
def test_fields_router_matches_choose_under_permutation(tasks, seed, keys):
    # Fields grouping is permutation-invariant by design (it sorts the
    # task list), so the compiled router over a *permuted* list must
    # match per-tuple dispatch over the original ordering too.
    a = FieldsGrouping(tasks, ["k"])
    b = FieldsGrouping(_permuted(tasks, seed), ["k"])
    _assert_parity(a, b, [(k,) for k in keys])


@settings(max_examples=60, deadline=None)
@given(tasks=_TASKS, seed=_PERM_SEED, keys=_KEYS)
def test_partial_key_router_matches_choose(tasks, seed, keys):
    perm = _permuted(tasks, seed)
    a = PartialKeyGrouping(perm, ["k"])
    b = PartialKeyGrouping(perm, ["k"])
    _assert_parity(a, b, [(k,) for k in keys])


@settings(max_examples=40, deadline=None)
@given(tasks=_TASKS, seed=_PERM_SEED, keys=_KEYS)
def test_static_routers_match_choose(tasks, seed, keys):
    perm = _permuted(tasks, seed)
    values_seq = [(k,) for k in keys]
    _assert_parity(GlobalGrouping(perm), GlobalGrouping(perm), values_seq)
    _assert_parity(AllGrouping(perm), AllGrouping(perm), values_seq)


@settings(max_examples=40, deadline=None)
@given(tasks=_TASKS, seed=_PERM_SEED, keys=_KEYS)
def test_local_or_shuffle_router_matches_choose(tasks, seed, keys):
    perm = _permuted(tasks, seed)
    local = perm[: max(1, len(perm) // 2)]
    a = LocalOrShuffleGrouping(perm, np.random.default_rng(5), local)
    b = LocalOrShuffleGrouping(perm, np.random.default_rng(5), local)
    _assert_parity(a, b, [(k,) for k in keys])


@settings(max_examples=40, deadline=None)
@given(tasks=_TASKS, seed=_PERM_SEED, keys=_KEYS)
def test_dynamic_router_matches_choose(tasks, seed, keys):
    # DynamicGrouping uses the base content-free fallback router; the
    # deficit-counter state must advance identically on both sides.
    perm = _permuted(tasks, seed)
    rng = np.random.default_rng(seed)
    ratios = rng.uniform(0.1, 1.0, size=len(perm))
    a = DynamicGrouping(perm, SplitRatioControl(len(perm), ratios))
    b = DynamicGrouping(perm, SplitRatioControl(len(perm), ratios))
    _assert_parity(a, b, [(k,) for k in keys])


def test_fields_router_handles_unhashable_keys():
    g = FieldsGrouping([3, 1, 2], ["k"])
    router = g.compile_router(fields=("k",), **_CTX)
    values = ([1, 2],)  # list inside the key: not memoisable
    expected = g.choose(Tuple(values=values, fields=("k",)))
    assert router(values, None) == expected
    assert router(values, None) == expected  # and again, no cache poison


def test_partial_key_router_handles_unhashable_keys():
    a = PartialKeyGrouping([3, 1, 2], ["k"])
    b = PartialKeyGrouping([3, 1, 2], ["k"])
    router = b.compile_router(fields=("k",), **_CTX)
    for _ in range(4):
        values = ([1],)
        expected = a.choose(Tuple(values=values, fields=("k",)))
        assert router(values, None) == expected


def test_fields_router_missing_field_falls_back_to_probe_path():
    g = FieldsGrouping([1, 2], ["missing"])
    router = g.compile_router(fields=("k",), **_CTX)
    with pytest.raises(KeyError, match="missing"):
        router((5,), None)


def test_direct_router_matches_choose_direct_and_errors():
    g = DirectGrouping([4, 5])
    router = g.compile_router(fields=(), **_CTX)
    assert router((1,), 5) == g.choose_direct(5) == [5]
    with pytest.raises(ValueError, match="requires emit"):
        router((1,), None)
    with pytest.raises(ValueError, match="not a consumer task"):
        router((1,), 9)


# --- executor plan lifecycle ------------------------------------------------------


class _FakeCluster:
    def __init__(self):
        self.membership_epoch = 0


def _make_executor():
    env = Environment()
    config = TopologyConfig()
    transport = Transport(env, config)
    ledger = AckLedger(env, message_timeout=30.0)
    node = Node(env, "n0")
    worker = Worker(env, 0, node)
    ex = BaseExecutor(
        env=env, task_id=1, task_index=0, component_id="c", worker=worker,
        config=config, transport=transport, ledger=ledger,
        rng=np.random.default_rng(0),
    )
    for task in (11, 12):
        transport.register(task, Store(env), Worker(env, task, node))
    ex.declared_outputs = {"s": ("k",), "idle": ("k",)}
    return env, ex, transport


def test_plan_declared_but_unsubscribed_returns_no_edges():
    _env, ex, _t = _make_executor()
    assert ex.route_emission((1,), "idle", roots=()) == []
    assert ex._plans["idle"] is None  # cached empty plan


def test_plan_undeclared_stream_raises():
    _env, ex, _t = _make_executor()
    with pytest.raises(ValueError, match="undeclared stream"):
        ex.route_emission((1,), "nope", roots=())


def test_plan_recompiles_when_membership_epoch_moves():
    env, ex, transport = _make_executor()
    cluster = _FakeCluster()
    ex._cluster = cluster
    ex.outbound["s"] = [("down", AllGrouping([11]))]
    ex.route_emission((1,), "s", roots=())
    assert set(ex._plans) == {"s"}
    # Elastic rewire: consumer set changes and the epoch is bumped; the
    # stale compiled table must not keep routing to the old target.
    ex.outbound["s"] = [("down", AllGrouping([12]))]
    cluster.membership_epoch += 1
    ex.route_emission((1,), "s", roots=())
    env.run(until=1.0)
    assert transport.queues[11].level == 1
    assert transport.queues[12].level == 1


def test_plan_stale_without_epoch_bump_is_reused():
    # Control for the test above: same rewire, no epoch bump — the
    # compiled plan is (correctly) reused, so invalidation really is
    # epoch-driven rather than per-emission recompilation.
    env, ex, transport = _make_executor()
    ex._cluster = _FakeCluster()
    ex.outbound["s"] = [("down", AllGrouping([11]))]
    ex.route_emission((1,), "s", roots=())
    ex.outbound["s"] = [("down", AllGrouping([12]))]
    ex.route_emission((1,), "s", roots=())
    env.run(until=1.0)
    assert transport.queues[11].level == 2
    assert transport.queues[12].level == 0
