"""Unit tests for the node CPU/interference accounting."""

import pytest

from repro.des import Environment
from repro.storm.node import Node


def test_dilation_below_capacity_is_one():
    env = Environment()
    node = Node(env, "n", cores=4)
    assert node.dilation() == 1.0
    node.busy_executors = 3
    assert node.dilation() == 1.0


def test_dilation_above_capacity_scales():
    env = Environment()
    node = Node(env, "n", cores=4)
    node.busy_executors = 6
    assert node.dilation() == pytest.approx(1.5)
    node.set_external_load(2.0)
    assert node.dilation() == pytest.approx(2.0)


def test_service_start_counts_the_newcomer():
    env = Environment()
    node = Node(env, "n", cores=1)
    d1 = node.service_started()
    assert d1 == 1.0  # first tuple on an idle 1-core node
    d2 = node.service_started()
    assert d2 == pytest.approx(2.0)  # second concurrent service contends
    node.service_finished()
    node.service_finished()
    assert node.busy_executors == 0


def test_demand_integral_accumulates_capped_usage():
    env = Environment()
    node = Node(env, "n", cores=2)

    def load(env):
        node.service_started()
        yield env.timeout(4.0)
        node.service_finished()

    env.process(load(env))
    env.run()
    # 1 busy executor for 4 s on a 2-core node -> 4 core-seconds.
    assert node.demand_integral == pytest.approx(4.0)


def test_demand_integral_caps_at_capacity():
    env = Environment()
    node = Node(env, "n", cores=2)

    def overload(env):
        for _ in range(5):
            node.service_started()
        yield env.timeout(2.0)
        for _ in range(5):
            node.service_finished()

    env.process(overload(env))
    env.run()
    # Demand 5 on 2 cores for 2 s caps at 2 * 2 = 4 core-seconds.
    assert node.demand_integral == pytest.approx(4.0)


def test_external_load_validation():
    env = Environment()
    node = Node(env, "n")
    with pytest.raises(ValueError):
        node.set_external_load(-1.0)


def test_constructor_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Node(env, "n", cores=0)
    with pytest.raises(ValueError):
        Node(env, "n", slots=0)


def test_co_located_workers_excludes_self():
    from repro.storm.worker import Worker

    env = Environment()
    node = Node(env, "n", slots=3)
    w0 = Worker(env, 0, node)
    w1 = Worker(env, 1, node)
    w2 = Worker(env, 2, node)
    assert node.co_located_workers(w1) == [w0, w2]


def test_worker_pause_resume_gate():
    from repro.storm.worker import Worker

    env = Environment()
    node = Node(env, "n")
    w = Worker(env, 0, node)
    assert w.pause_gate() is None
    w.pause()
    gate = w.pause_gate()
    assert gate is not None and not gate.triggered
    w.pause()  # idempotent
    assert w.pause_gate() is gate
    w.resume()
    assert gate.triggered
    assert w.pause_gate() is None
    w.resume()  # idempotent


def test_worker_slow_factor_validation():
    from repro.storm.worker import Worker

    env = Environment()
    w = Worker(env, 0, Node(env, "n"))
    with pytest.raises(ValueError):
        w.set_slow_factor(0.5)
    w.set_slow_factor(3.0)
    assert w.is_misbehaving
    w.set_slow_factor(1.0)
    assert not w.is_misbehaving
