"""Tests for cluster assembly, scheduling, and the ratio control surface."""

import numpy as np
import pytest

from repro.des import Environment
from repro.storm import (
    Cluster,
    EvenScheduler,
    NodeSpec,
    StormSimulation,
    TopologyBuilder,
    TopologyConfig,
)
from repro.storm.node import Node
from tests.storm.helpers import CounterSpout, PassBolt, SinkBolt


def build_topology(workers=4, dynamic=True):
    b = TopologyBuilder()
    b.set_spout("src", CounterSpout(rate=100), parallelism=2)
    spec = b.set_bolt("sink", SinkBolt(), parallelism=4)
    if dynamic:
        spec.dynamic_grouping("src")
    else:
        spec.shuffle_grouping("src")
    return b.build("t", TopologyConfig(num_workers=workers))


def test_even_scheduler_spreads_workers_across_nodes():
    env = Environment()
    nodes = [Node(env, f"n{i}", cores=4, slots=2) for i in range(3)]
    placed = EvenScheduler().place_workers(5, nodes)
    names = [n.name for n in placed]
    # Round 0 uses one slot per node before round 1 starts.
    assert names[:3] == ["n0", "n1", "n2"]
    assert len(names) == 5


def test_scheduler_rejects_overcommit():
    env = Environment()
    nodes = [Node(env, "only", cores=4, slots=1)]
    with pytest.raises(ValueError, match="slots"):
        EvenScheduler().place_workers(2, nodes)


def test_executors_dealt_round_robin():
    sim = StormSimulation(
        build_topology(workers=3),
        nodes=[NodeSpec("n0", slots=2), NodeSpec("n1", slots=2)],
        seed=0,
    )
    per_worker = [len(w.executors) for w in sim.cluster.workers]
    # 6 tasks over 3 workers -> 2 each.
    assert per_worker == [2, 2, 2]


def test_cluster_requires_nodes_and_unique_names():
    env = Environment()
    with pytest.raises(ValueError):
        Cluster(env, [])
    with pytest.raises(ValueError, match="duplicate"):
        Cluster(env, [NodeSpec("x"), NodeSpec("x")])


def test_single_topology_per_cluster():
    env = Environment()
    cluster = Cluster(env, [NodeSpec("n0", slots=8)])
    cluster.submit(build_topology(workers=2))
    with pytest.raises(RuntimeError):
        cluster.submit(build_topology(workers=2))


def test_set_split_ratios_routes_accordingly():
    sim = StormSimulation(build_topology(workers=2), seed=1)
    sim.cluster.set_split_ratios("src", "sink", [1.0, 0.0, 0.0, 0.0])
    sim.run(duration=10)
    sink_execs = sorted(
        (
            ex
            for ex in sim.cluster.executors.values()
            if ex.component_id == "sink"
        ),
        key=lambda e: e.task_id,
    )
    counts = [ex.executed_count for ex in sink_execs]
    assert counts[0] > 0
    assert counts[1] == counts[2] == counts[3] == 0


def test_set_split_ratios_unknown_edge_raises():
    sim = StormSimulation(build_topology(dynamic=False), seed=1)
    with pytest.raises(KeyError, match="dynamic"):
        sim.cluster.set_split_ratios("src", "sink", [1, 0, 0, 0])


def test_get_split_ratios_reflects_set():
    sim = StormSimulation(build_topology(), seed=1)
    sim.cluster.set_split_ratios("src", "sink", [2.0, 1.0, 1.0, 0.0])
    assert np.allclose(
        sim.cluster.get_split_ratios("src", "sink"), [0.5, 0.25, 0.25, 0.0]
    )


def test_worker_and_task_lookup():
    sim = StormSimulation(build_topology(workers=2), seed=1)
    for task_id, ex in sim.cluster.executors.items():
        assert sim.cluster.worker_of_task(task_id) is ex.worker
        assert task_id in sim.cluster.tasks_of_worker(ex.worker.worker_id)


def test_initial_ratios_applied_from_topology():
    b = TopologyBuilder()
    b.set_spout("src", CounterSpout(rate=100))
    b.set_bolt("sink", SinkBolt(), parallelism=2).dynamic_grouping(
        "src", initial_ratios=[3.0, 1.0]
    )
    sim = StormSimulation(b.build("t", TopologyConfig(num_workers=2)), seed=2)
    assert np.allclose(sim.cluster.get_split_ratios("src", "sink"), [0.75, 0.25])
    sim.run(duration=10)
    sinks = sorted(
        (e for e in sim.cluster.executors.values() if e.component_id == "sink"),
        key=lambda e: e.task_id,
    )
    ratio = sinks[0].executed_count / (
        sinks[0].executed_count + sinks[1].executed_count
    )
    assert ratio == pytest.approx(0.75, abs=0.01)
