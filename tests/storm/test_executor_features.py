"""Executor feature tests: ticks, streams, direct emit, error paths."""

import pytest

from repro.storm import (
    Bolt,
    Emission,
    NodeSpec,
    Spout,
    StormSimulation,
    TopologyBuilder,
    TopologyConfig,
)
from repro.storm.tuples import Tuple
from tests.storm.helpers import CounterSpout, SinkBolt

NODES = [NodeSpec("n0", cores=4, slots=2)]


def test_tick_drives_windowed_bolt():
    class TickCounter(Bolt):
        outputs = {}

        def __init__(self):
            self.ticks = []

        def execute(self, tup, collector):
            pass

        def tick(self, now, collector):
            self.ticks.append(now)

    b = TopologyBuilder()
    b.set_spout("src", CounterSpout(rate=10))
    b.set_bolt("w", TickCounter()).shuffle_grouping("src")
    topo = b.build("t", TopologyConfig(num_workers=1, tick_interval=2.0))
    sim = StormSimulation(topo, nodes=NODES, seed=0)
    sim.run(duration=11)
    bolt = next(
        ex for ex in sim.cluster.executors.values() if ex.component_id == "w"
    ).bolt
    assert 4 <= len(bolt.ticks) <= 6  # every ~2 s, modulo queue delay
    assert all(t >= 2.0 for t in bolt.ticks)


def test_no_ticks_when_interval_zero():
    class TickCounter(Bolt):
        outputs = {}

        def __init__(self):
            self.ticks = 0

        def execute(self, tup, collector):
            pass

        def tick(self, now, collector):
            self.ticks += 1

    b = TopologyBuilder()
    b.set_spout("src", CounterSpout(rate=10))
    b.set_bolt("w", TickCounter()).shuffle_grouping("src")
    topo = b.build("t", TopologyConfig(num_workers=1, tick_interval=0.0))
    sim = StormSimulation(topo, nodes=NODES, seed=0)
    sim.run(duration=5)
    bolt = next(
        ex for ex in sim.cluster.executors.values() if ex.component_id == "w"
    ).bolt
    assert bolt.ticks == 0


def test_multi_stream_routing():
    class SplitterBolt(Bolt):
        outputs = {"default": ("n",), "odd": ("n",)}

        def execute(self, tup, collector):
            stream = "odd" if tup[0] % 2 else "default"
            collector.emit((tup[0],), stream=stream, anchors=[tup])

    b = TopologyBuilder()
    b.set_spout("src", CounterSpout(rate=100, limit=40))
    b.set_bolt("split", SplitterBolt()).shuffle_grouping("src")
    b.set_bolt("evens", SinkBolt()).shuffle_grouping("split")  # default stream
    b.set_bolt("odds", SinkBolt()).shuffle_grouping("split", stream="odd")
    topo = b.build("streams", TopologyConfig(num_workers=2))
    sim = StormSimulation(topo, nodes=NODES, seed=1)
    res = sim.run(duration=5)
    evens = next(
        ex for ex in sim.cluster.executors.values() if ex.component_id == "evens"
    ).bolt
    odds = next(
        ex for ex in sim.cluster.executors.values() if ex.component_id == "odds"
    ).bolt
    assert all(v[0] % 2 == 0 for v in evens.seen)
    assert all(v[0] % 2 == 1 for v in odds.seen)
    assert len(evens.seen) + len(odds.seen) == 40
    assert res.acked == 40  # both branches ack into the same trees


def test_undeclared_stream_emit_raises():
    class BadBolt(Bolt):
        outputs = {"default": ("n",)}

        def execute(self, tup, collector):
            collector.emit((1,), stream="ghost")

    b = TopologyBuilder()
    b.set_spout("src", CounterSpout(rate=50))
    b.set_bolt("bad", BadBolt()).shuffle_grouping("src")
    topo = b.build("bad", TopologyConfig(num_workers=1))
    sim = StormSimulation(topo, nodes=NODES, seed=0)
    with pytest.raises(ValueError, match="undeclared"):
        sim.run(duration=2)


def test_declared_but_unsubscribed_stream_evaporates():
    class ChattyBolt(Bolt):
        outputs = {"default": (), "side": ("n",)}

        def execute(self, tup, collector):
            collector.emit((tup[0],), stream="side")  # nobody listens

    b = TopologyBuilder()
    b.set_spout("src", CounterSpout(rate=100, limit=20))
    b.set_bolt("chat", ChattyBolt()).shuffle_grouping("src")
    topo = b.build("chat", TopologyConfig(num_workers=1))
    sim = StormSimulation(topo, nodes=NODES, seed=0)
    res = sim.run(duration=5)
    assert res.acked == 20  # side-stream emits don't block tree completion


def test_direct_grouping_end_to_end():
    class DirectorBolt(Bolt):
        outputs = {"default": ("n",)}

        def prepare(self, context):
            self.targets = None

        def execute(self, tup, collector):
            collector.emit((tup[0],), anchors=[tup], direct_task=self.target)

    b = TopologyBuilder()
    b.set_spout("src", CounterSpout(rate=100, limit=30))
    b.set_bolt("direct", DirectorBolt()).shuffle_grouping("src")
    b.set_bolt("sink", SinkBolt(), parallelism=3).direct_grouping("direct")
    topo = b.build("direct", TopologyConfig(num_workers=1))
    sim = StormSimulation(topo, nodes=NODES, seed=0)
    # Point every direct emit at the middle sink task.
    sink_tasks = topo.task_ids["sink"]
    for ex in sim.cluster.executors.values():
        if ex.component_id == "direct":
            ex.bolt.target = sink_tasks[1]
    res = sim.run(duration=5)
    per_task = {
        ex.task_id: ex.executed_count
        for ex in sim.cluster.executors.values()
        if ex.component_id == "sink"
    }
    assert per_task[sink_tasks[1]] == 30
    assert per_task[sink_tasks[0]] == 0 and per_task[sink_tasks[2]] == 0
    assert res.acked == 30


def test_spout_exhaustion_stops_cleanly():
    b = TopologyBuilder()
    b.set_spout("src", CounterSpout(rate=100, limit=10))
    b.set_bolt("sink", SinkBolt()).shuffle_grouping("src")
    topo = b.build("fin", TopologyConfig(num_workers=1))
    sim = StormSimulation(topo, nodes=NODES, seed=0)
    res = sim.run(duration=30)
    assert res.acked == 10
    spout = next(
        ex for ex in sim.cluster.executors.values() if ex.component_id == "src"
    )
    assert spout.spout.emitted == 10


def test_explicit_fail_triggers_replay():
    class PickyBolt(Bolt):
        outputs = {}
        auto_ack = False

        def __init__(self):
            self.attempts = {}

        def execute(self, tup, collector):
            n = tup[0]
            self.attempts[n] = self.attempts.get(n, 0) + 1
            if self.attempts[n] == 1 and n % 5 == 0:
                collector.fail(tup)  # reject first attempt of every 5th
            else:
                collector.ack(tup)

    b = TopologyBuilder()
    b.set_spout("src", CounterSpout(rate=100, limit=20))
    b.set_bolt("picky", PickyBolt()).shuffle_grouping("src")
    topo = b.build("picky", TopologyConfig(num_workers=1, max_replays=5))
    sim = StormSimulation(topo, nodes=NODES, seed=0)
    res = sim.run(duration=10)
    bolt = next(
        ex for ex in sim.cluster.executors.values() if ex.component_id == "picky"
    ).bolt
    rejected = [n for n in bolt.attempts if n % 5 == 0]
    assert all(bolt.attempts[n] == 2 for n in rejected)  # replayed exactly once
    assert res.failed == len(rejected)
    spout = next(
        ex for ex in sim.cluster.executors.values() if ex.component_id == "src"
    )
    assert {m for m, _ in spout.spout.acks} == {
        (spout.task_id, i) for i in range(1, 21)
    }
