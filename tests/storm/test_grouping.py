"""Tests for grouping strategies — incl. dynamic grouping convergence
(property-based, since exact split fidelity is the paper's E4 claim)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storm.grouping import (
    AllGrouping,
    DirectGrouping,
    DynamicGrouping,
    FieldsGrouping,
    GlobalGrouping,
    LocalOrShuffleGrouping,
    PartialKeyGrouping,
    ShuffleGrouping,
    SplitRatioControl,
    make_grouping,
)
from repro.storm.tuples import Tuple


def mktuple(key="k"):
    return Tuple(values=(key,), fields=("key",))


def rng():
    return np.random.default_rng(0)


# --- shuffle -----------------------------------------------------------------


def test_shuffle_round_robin_uniform():
    g = ShuffleGrouping([10, 11, 12], rng())
    picks = [g.choose(mktuple())[0] for _ in range(300)]
    counts = {t: picks.count(t) for t in (10, 11, 12)}
    assert counts == {10: 100, 11: 100, 12: 100}


def test_shuffle_single_target():
    g = ShuffleGrouping([7], rng())
    assert g.choose(mktuple()) == [7]


# --- fields -----------------------------------------------------------------


def test_fields_same_key_same_task():
    g = FieldsGrouping([1, 2, 3, 4], fields=["key"])
    t1 = g.choose(mktuple("alpha"))
    t2 = g.choose(mktuple("alpha"))
    assert t1 == t2


def test_fields_spreads_keys():
    g = FieldsGrouping([1, 2, 3, 4], fields=["key"])
    hit = {g.choose(mktuple(f"key-{i}"))[0] for i in range(200)}
    assert hit == {1, 2, 3, 4}


def test_fields_requires_fields():
    with pytest.raises(ValueError):
        FieldsGrouping([1], fields=[])


# --- global / all / direct --------------------------------------------------------


def test_global_always_lowest():
    g = GlobalGrouping([9, 3, 7])
    assert g.choose(mktuple()) == [3]


def test_all_broadcasts():
    g = AllGrouping([1, 2, 3])
    assert g.choose(mktuple()) == [1, 2, 3]


def test_direct_requires_explicit_target():
    g = DirectGrouping([1, 2])
    with pytest.raises(RuntimeError):
        g.choose(mktuple())
    assert g.choose_direct(2) == [2]
    with pytest.raises(ValueError):
        g.choose_direct(99)


# --- local or shuffle ---------------------------------------------------------------


def test_local_or_shuffle_prefers_local():
    g = LocalOrShuffleGrouping([1, 2, 3, 4], rng(), local_tasks=[2, 4])
    picks = {g.choose(mktuple())[0] for _ in range(50)}
    assert picks <= {2, 4}


def test_local_or_shuffle_falls_back_to_all():
    g = LocalOrShuffleGrouping([1, 2, 3], rng(), local_tasks=[])
    picks = {g.choose(mktuple())[0] for _ in range(50)}
    assert picks == {1, 2, 3}


# --- partial key -------------------------------------------------------------------


def test_partial_key_at_most_two_tasks_per_key():
    g = PartialKeyGrouping(list(range(8)), fields=["key"])
    for key in ("a", "b", "hot"):
        picks = {g.choose(mktuple(key))[0] for _ in range(100)}
        assert len(picks) <= 2


def test_partial_key_balances_hot_key():
    g = PartialKeyGrouping([0, 1, 2, 3], fields=["key"])
    picks = [g.choose(mktuple("hot"))[0] for _ in range(1000)]
    counts = sorted(picks.count(t) for t in set(picks))
    if len(counts) == 2:  # both choices distinct
        assert abs(counts[0] - counts[1]) <= 1


# --- split ratio control -----------------------------------------------------------


def test_control_normalises():
    c = SplitRatioControl(3, ratios=[2, 1, 1])
    assert np.allclose(c.ratios, [0.5, 0.25, 0.25])


def test_control_defaults_uniform():
    c = SplitRatioControl(4)
    assert np.allclose(c.ratios, 0.25)


def test_control_rejects_bad_ratios():
    c = SplitRatioControl(2)
    with pytest.raises(ValueError):
        c.set_ratios([1.0])  # arity
    with pytest.raises(ValueError):
        c.set_ratios([-1.0, 2.0])
    with pytest.raises(ValueError):
        c.set_ratios([0.0, 0.0])
    with pytest.raises(ValueError):
        c.set_ratios([np.nan, 1.0])


def test_control_version_bumps_and_history():
    c = SplitRatioControl(2)
    v0 = c.version
    c.set_ratios([1, 3], now=12.5)
    assert c.version == v0 + 1
    assert c.history[-1][0] == 12.5
    assert np.allclose(c.history[-1][1], [0.25, 0.75])


# --- dynamic grouping ----------------------------------------------------------------


def achieved(g, n):
    counts = {t: 0 for t in g.target_tasks}
    for _ in range(n):
        counts[g.choose(mktuple())[0]] += 1
    return counts


def test_dynamic_uniform_default():
    c = SplitRatioControl(4)
    g = DynamicGrouping([0, 1, 2, 3], c)
    counts = achieved(g, 400)
    assert all(v == 100 for v in counts.values())


def test_dynamic_exact_ratios():
    c = SplitRatioControl(3, ratios=[0.5, 0.3, 0.2])
    g = DynamicGrouping([0, 1, 2], c)
    counts = achieved(g, 1000)
    assert counts[0] == pytest.approx(500, abs=2)
    assert counts[1] == pytest.approx(300, abs=2)
    assert counts[2] == pytest.approx(200, abs=2)


def test_dynamic_zero_ratio_excludes_target():
    c = SplitRatioControl(3, ratios=[0.5, 0.0, 0.5])
    g = DynamicGrouping([0, 1, 2], c)
    counts = achieved(g, 500)
    assert counts[1] == 0


def test_dynamic_on_the_fly_change():
    c = SplitRatioControl(2, ratios=[0.5, 0.5])
    g = DynamicGrouping([0, 1], c)
    achieved(g, 100)
    c.set_ratios([1.0, 0.0])
    counts = achieved(g, 100)
    assert counts == {0: 100, 1: 0}


def test_dynamic_control_shared_across_groupers():
    # Two upstream emitters share one control: a single set_ratios call
    # retargets both (the paper's one-call actuation requirement).
    c = SplitRatioControl(2)
    g1 = DynamicGrouping([0, 1], c)
    g2 = DynamicGrouping([0, 1], c)
    c.set_ratios([0.0, 1.0])
    assert achieved(g1, 50) == {0: 0, 1: 50}
    assert achieved(g2, 50) == {0: 0, 1: 50}


def test_dynamic_arity_mismatch_rejected():
    c = SplitRatioControl(2)
    with pytest.raises(ValueError):
        DynamicGrouping([0, 1, 2], c)


@settings(max_examples=50, deadline=None)
@given(
    weights=st.lists(
        st.floats(min_value=0.0, max_value=10.0), min_size=2, max_size=8
    ).filter(lambda w: sum(w) > 0.1)
)
def test_dynamic_split_error_bounded_property(weights):
    """Achieved counts deviate from requested by O(#targets) tuples at any
    prefix length (deficit-WRR guarantee) — so the split error vanishes as
    1/n, which is the paper's E4 "works as expected" claim."""
    n_targets = len(weights)
    c = SplitRatioControl(n_targets, ratios=weights)
    g = DynamicGrouping(list(range(n_targets)), c)
    counts = np.zeros(n_targets)
    for i in range(1, 301):
        counts[g.choose(mktuple())[0]] += 1
        expect = c.ratios * i
        assert np.all(np.abs(counts - expect) <= n_targets + 1e-9)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=2**31))
def test_dynamic_total_conservation_property(n_targets, seed):
    """Every tuple goes to exactly one target (no loss, no duplication)."""
    r = np.random.default_rng(seed)
    ratios = r.random(n_targets) + 0.01
    c = SplitRatioControl(n_targets, ratios=ratios)
    g = DynamicGrouping(list(range(n_targets)), c)
    counts = achieved(g, 777)
    assert sum(counts.values()) == 777


# --- factory ------------------------------------------------------------------------


def test_make_grouping_dispatch():
    r = rng()
    c = SplitRatioControl(2)
    assert isinstance(make_grouping("shuffle", [0, 1], rng=r), ShuffleGrouping)
    assert isinstance(
        make_grouping("fields", [0, 1], fields=["key"]), FieldsGrouping
    )
    assert isinstance(make_grouping("global", [0, 1]), GlobalGrouping)
    assert isinstance(make_grouping("all", [0, 1]), AllGrouping)
    assert isinstance(make_grouping("direct", [0, 1]), DirectGrouping)
    assert isinstance(
        make_grouping("local_or_shuffle", [0, 1], rng=r), LocalOrShuffleGrouping
    )
    assert isinstance(
        make_grouping("partial_key", [0, 1], fields=["key"]), PartialKeyGrouping
    )
    assert isinstance(
        make_grouping("dynamic", [0, 1], control=c), DynamicGrouping
    )
    with pytest.raises(ValueError):
        make_grouping("bogus", [0, 1])


def test_grouping_requires_targets():
    with pytest.raises(ValueError):
        GlobalGrouping([])
