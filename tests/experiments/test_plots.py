"""Tests for the ASCII plot renderer."""

import numpy as np
import pytest

from repro.experiments.plots import ascii_plot


def test_basic_render_contains_glyphs_and_axis():
    out = ascii_plot([[0, 1, 2, 3, 2, 1, 0]], width=20, height=6, title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "*" in out
    assert any(line.strip().startswith("+--") or "+---" in line for line in lines)


def test_two_series_distinct_glyphs():
    out = ascii_plot(
        [[1, 1, 1, 1], [0, 2, 0, 2]],
        labels=["flat", "zigzag"],
        width=16,
        height=5,
    )
    assert "*" in out and "o" in out
    assert "flat" in out and "zigzag" in out


def test_min_max_labels():
    out = ascii_plot([[5.0, 10.0]], width=10, height=4)
    assert "10" in out
    assert "5" in out


def test_flat_series_renders():
    out = ascii_plot([[3.0, 3.0, 3.0]], width=10, height=4)
    assert "*" in out


def test_long_series_resampled():
    y = np.sin(np.linspace(0, 10, 5000))
    out = ascii_plot([y], width=40, height=8)
    # Canvas width respected.
    for line in out.splitlines():
        assert len(line) <= 40 + 12


def test_x_axis_footer():
    out = ascii_plot([[1, 2]], x=[0.0, 99.0], width=20, height=4)
    assert "99" in out


def test_validation():
    with pytest.raises(ValueError):
        ascii_plot([])
    with pytest.raises(ValueError):
        ascii_plot([[]])
    with pytest.raises(ValueError):
        ascii_plot([[1.0]], width=2, height=2)
    with pytest.raises(ValueError):
        ascii_plot([[np.nan, np.nan]])
