"""Scenario-pack tests: spec hygiene, golden pin, and parallel identity.

``tests/golden/elasticity_smoke.json`` is the full report of::

    python -m repro scenario --name flash_crowd --seed 7 --runs 2 \
        --arms fixed autoscale --out tests/golden/elasticity_smoke.json

(the exact command the ``elasticity-smoke`` CI job runs).  The byte-pin
covers the whole elastic stack: scale-out/in mechanics, executor
migration, membership-epoch resyncs, and the autoscaler's decision
sequence.  If a change is *intentional*, regenerate with the command
above and review the diff — the acceptance property (the autoscaling arm
holds the latency SLO that the fixed pool breaches) is asserted
separately below, so a regenerated golden that loses the property fails
loudly.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.scenarios import (
    ARMS,
    SCENARIOS,
    ScenarioCampaign,
    ScenarioSpec,
    run_scenario_campaign,
)
from repro.obs.export import summary_to_json

GOLDEN = Path(__file__).resolve().parents[1] / "golden" / "elasticity_smoke.json"


class TestSpecHygiene:
    def test_registry_contains_the_pack(self):
        assert set(SCENARIOS) == {
            "diurnal_ramp", "flash_crowd", "hot_key_storm", "slow_burn"
        }
        for spec in SCENARIOS.values():
            spec.validate()

    def test_windows_are_horizon_fractions(self):
        spec = SCENARIOS["flash_crowd"]
        profile = spec.profile(200.0)
        (lo, hi, mult) = profile.bursts[0]
        (flo, fhi, fmult) = spec.bursts[0]
        assert (lo, hi, mult) == (flo * 200.0, fhi * 200.0, fmult)
        assert profile.rate((lo + hi) / 2) == pytest.approx(
            spec.base_rate * fmult
        )

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError, match="horizon fractions"):
            ScenarioSpec(
                name="x", description="", bursts=((0.5, 1.2, 2.0),)
            ).validate()

    def test_unknown_scenario_and_arm_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_scenario_campaign("melting_pot")
        with pytest.raises(ValueError, match="unknown arm"):
            ScenarioCampaign(SCENARIOS["flash_crowd"], arms=("fixed", "magic"))
        with pytest.raises(ValueError, match="unique"):
            ScenarioCampaign(SCENARIOS["flash_crowd"], arms=("fixed", "fixed"))

    def test_arm_registry(self):
        assert ARMS == ("fixed", "autoscale", "rate_control")


class TestGoldenFile:
    """Fast guards on the committed artifact (no simulation)."""

    def test_golden_is_wellformed(self):
        data = json.loads(GOLDEN.read_text())
        assert data["campaign_seed"] == 7
        assert set(data["arms"]) == {"fixed", "autoscale"}
        assert len(data["runs"]) == 4  # 2 arms x 2 runs
        for run in data["runs"]:
            assert run["emitted"] == (
                run["acked"] + run["failed"] + run["in_flight"]
            )
            assert run["conserved"] is True

    def test_golden_shows_autoscale_holding_the_slo(self):
        # The PR's acceptance property, pinned on the committed bytes:
        # the fixed pool breaches the latency SLO hard, the autoscaling
        # arm absorbs the same (seed-identical) flash crowd.
        data = json.loads(GOLDEN.read_text())
        fixed = data["arms"]["fixed"]
        auto = data["arms"]["autoscale"]
        assert fixed["mean_slo_breach_fraction"] > 0.25
        assert auto["mean_slo_breach_fraction"] < 0.10
        assert auto["max_pool"] > fixed["max_pool"]
        # every fixed-arm run individually breaches more than every
        # autoscale run (paired seeds, so this is causal, not noise)
        by_arm = {}
        for run in data["runs"]:
            by_arm.setdefault(run["arm"], []).append(
                run["slo_breach_fraction"]
            )
        assert min(by_arm["fixed"]) > max(by_arm["autoscale"])

    def test_golden_pool_returns_after_the_burst(self):
        data = json.loads(GOLDEN.read_text())
        for run in data["runs"]:
            if run["arm"] != "autoscale":
                continue
            assert run["scale_outs"] >= 1
            assert run["workers_max"] > 2
            # scale-in gave at least one worker back after the burst
            assert run["workers_final"] < run["workers_max"]


@pytest.mark.slow
class TestGoldenByteIdentity:
    """Full recompute of the pinned campaign (CI: elasticity-smoke)."""

    def _bytes(self, tmp_path, **kwargs):
        report = run_scenario_campaign(
            "flash_crowd", seed=7, runs=2, arms=("fixed", "autoscale"),
            **kwargs,
        )
        out = tmp_path / "out.json"
        summary_to_json(report.summary(), out)
        return out.read_text()

    def test_serial_heap_matches_golden(self, tmp_path):
        assert self._bytes(tmp_path) == GOLDEN.read_text(), (
            "scenario campaign drifted from "
            "tests/golden/elasticity_smoke.json; if intentional, "
            "regenerate it (see module docstring) and commit"
        )

    def test_sharded_calendar_matches_golden(self, tmp_path):
        got = self._bytes(tmp_path, jobs=2, scheduler="calendar")
        assert got == GOLDEN.read_text(), (
            "scenario report depends on jobs/scheduler — the "
            "byte-determinism contract is broken"
        )
