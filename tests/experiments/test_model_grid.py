"""Tests for the (model × app × fault-profile) prediction grid.

The fast tests exercise the cheap model families, the grid plumbing, and
the byte-stable summary document.  Training-heavy coverage — all seven
families at once, sharded/cached grid equivalence — is marked
``@pytest.mark.slow`` and runs in the ``model-grid-smoke`` CI job.
"""

import numpy as np
import pytest

from repro.experiments import (
    ALL_MODELS,
    collect_trace,
    evaluate_models_on_trace,
    run_prediction_grid,
)
from repro.experiments.prediction import (
    GRID_FAULT_PROFILES,
    SERIES_MODELS,
    WINDOWED_MODELS,
    _profile_faults,
)
from repro.obs.report import GRID_SCHEMA, grid_summary, report_to_json
from repro.parallel import ResultCache

CHEAP_MODELS = ("svr", "holt", "ensemble")


@pytest.fixture(scope="module")
def small_trace():
    return collect_trace(app="url_count", duration=100, base_rate=150, seed=1)


# --- model-name registry ----------------------------------------------------------


def test_model_registry_covers_seven_families():
    assert len(ALL_MODELS) == 7
    assert set(WINDOWED_MODELS) == {"drnn", "drnn_gru", "svr", "tcn"}
    assert set(SERIES_MODELS) == {"arima", "holt"}
    assert "ensemble" in ALL_MODELS


def test_ensemble_requires_two_base_models(small_trace):
    with pytest.raises(ValueError, match="at least 2"):
        evaluate_models_on_trace(
            small_trace.monitor, models=("svr", "ensemble"), window=4,
            horizon=2,
        )


# --- cheap families + ensemble post-processing ------------------------------------


def test_holt_and_ensemble_on_trace(small_trace):
    res = evaluate_models_on_trace(
        small_trace.monitor,
        app="url_count",
        window=4,
        horizon=2,
        models=CHEAP_MODELS,
        ensemble_window=4,
    )
    assert set(res.scores) == set(CHEAP_MODELS)
    for s in res.scores.values():
        assert np.isfinite(s["mape"]) and s["mape"] >= 0
    y_te = res.traces["actual"][0]
    # The ensemble's selection counts account for every test point.
    meta = res.meta["ensemble"]
    assert meta["window"] == 4
    assert sum(meta["selection_counts"].values()) == len(y_te)
    assert set(meta["selection_counts"]) <= {"svr", "holt", "<mean>"}
    # Every ensemble point is one of the base predictions (or the
    # cold-start mean) — the selector never invents values.
    ens = res.traces["ensemble"][1]
    base = np.stack([res.traces[m][1] for m in ("svr", "holt")])
    mean = base.mean(axis=0)
    candidates = np.vstack([base, mean[None]])
    assert np.all(np.min(np.abs(candidates - ens), axis=0) < 1e-9)


# --- fault profiles ----------------------------------------------------------------


def test_profile_faults_shapes():
    from repro.storm import SlowdownFault, WorkerCrashFault

    assert _profile_faults("interference", 100.0) is None
    assert _profile_faults("calm", 100.0) == []
    (slow,) = _profile_faults("slowdown", 100.0)
    assert isinstance(slow, SlowdownFault) and slow.start == 40.0
    (crash,) = _profile_faults("crash", 100.0)
    assert isinstance(crash, WorkerCrashFault)
    with pytest.raises(ValueError, match="unknown fault profile"):
        _profile_faults("bogus", 100.0)
    assert set(GRID_FAULT_PROFILES) == {
        "interference", "calm", "slowdown", "crash"
    }


def test_grid_rejects_unknown_profile():
    with pytest.raises(ValueError, match="unknown fault profile"):
        run_prediction_grid(profiles=("bogus",), duration=60)


# --- the grid + its byte-stable summary -------------------------------------------


def _tiny_grid(jobs=1, cache=None):
    return run_prediction_grid(
        apps=("url_count",),
        profiles=("calm", "slowdown"),
        models=CHEAP_MODELS,
        duration=100.0,
        base_rate=150.0,
        window=4,
        horizon=2,
        seed=1,
        jobs=jobs,
        cache=cache,
        ensemble_window=4,
    )


def test_grid_cells_tables_and_summary(tmp_path):
    grid = _tiny_grid()
    assert set(grid.cells) == {
        ("url_count", "calm"), ("url_count", "slowdown")
    }
    rows = grid.table_rows()
    assert len(rows) == 2 * len(CHEAP_MODELS)
    assert rows[0][:2] == ["url_count", "calm"]
    best = grid.best_model("url_count", "slowdown")
    assert best in CHEAP_MODELS

    doc = grid_summary(grid)
    assert doc["schema"] == GRID_SCHEMA
    assert doc["models"] == list(CHEAP_MODELS)
    assert len(doc["cells"]) == 2
    for cell in doc["cells"]:
        assert set(cell["scores"]) == set(CHEAP_MODELS)
        assert cell["meta"]["ensemble"]["window"] == 4
    # Serialisation is byte-stable: same grid -> same document text.
    assert report_to_json(doc) == report_to_json(grid_summary(_tiny_grid()))


@pytest.mark.slow
def test_all_seven_families_score(small_trace):
    res = evaluate_models_on_trace(
        small_trace.monitor,
        app="url_count",
        window=6,
        horizon=3,
        models=ALL_MODELS,
        drnn_hidden=(8,),
        drnn_epochs=8,
        tcn_channels=(8,),
        seed=0,
    )
    assert set(res.scores) == set(ALL_MODELS)
    for name, s in res.scores.items():
        assert np.isfinite(s["mape"]), name
        assert s["rmse"] >= 0 and s["mae"] >= 0
    lengths = {len(t[1]) for t in res.traces.values()}
    assert len(lengths) == 1  # every family predicted the same test vector


@pytest.mark.slow
def test_grid_byte_identical_across_jobs_and_cache(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    serial = report_to_json(grid_summary(_tiny_grid(jobs=1)))
    sharded = report_to_json(grid_summary(_tiny_grid(jobs=2)))
    cold = report_to_json(grid_summary(_tiny_grid(jobs=2, cache=cache)))
    warm = report_to_json(grid_summary(_tiny_grid(jobs=1, cache=cache)))
    assert serial == sharded
    assert serial == cold == warm
    assert cache.hits > 0  # the warm pass actually served from disk
