"""Tests for the experiment harness (small scales; the full-scale runs
live in benchmarks/)."""

import numpy as np
import pytest

from repro.experiments import (
    collect_trace,
    evaluate_models_on_trace,
    format_table,
    run_reliability_scenario,
)
from repro.experiments.prediction import _split_index, _windowed_split
from repro.experiments.reliability import default_faults
from repro.experiments.traces import build_app_topology, default_profile
from repro.apps import RateProfile


@pytest.fixture(scope="module")
def small_trace():
    return collect_trace(app="url_count", duration=120, base_rate=150, seed=1)


# --- tables -------------------------------------------------------------------


def test_format_table_alignment():
    out = format_table(["a", "bbb"], [[1, 2.5], ["xx", 0.001234]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bbb" in lines[1]
    assert len(lines) == 5


def test_format_table_ragged_rejected():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


# --- traces ---------------------------------------------------------------------


def test_collect_trace_bundles_both_monitors(small_trace):
    b = small_trace
    assert b.monitor.include_interference
    assert not b.monitor_no_interference.include_interference
    assert b.monitor.n_intervals == b.monitor_no_interference.n_intervals
    assert b.monitor.n_intervals == len(b.result.snapshots)
    assert b.result.acked > 1000


def test_default_profile_has_dynamics():
    p = default_profile(base=100, horizon=600)
    rates = [p.rate(t) for t in np.linspace(0, 600, 200)]
    assert max(rates) > 150  # step/burst visible
    assert min(rates) < 90  # diurnal trough visible


def test_build_app_topology_validates():
    with pytest.raises(ValueError, match="unknown app"):
        build_app_topology("bogus", RateProfile(base=10))


def test_trace_target_has_variance(small_trace):
    # The trace recipe must produce a non-degenerate prediction target.
    for wid in small_trace.monitor.worker_ids:
        t = small_trace.monitor.target_series(wid)
        assert t.std() > 0


# --- prediction protocol ---------------------------------------------------------


def test_split_index_validation():
    with pytest.raises(ValueError):
        _split_index(4, 0.1)


def test_windowed_split_alignment(small_trace):
    X_tr, y_tr, X_te, y_te = _windowed_split(
        small_trace.monitor, window=4, train_fraction=0.7, horizon=3
    )
    n_workers = len(small_trace.monitor.worker_ids)
    T = small_trace.monitor.n_intervals
    cut = int(T * 0.7)
    assert y_te.shape[0] == n_workers * (T - cut)
    assert X_tr.shape[1:] == (4, len(small_trace.monitor.feature_names))
    # Train targets never reach into the test region.
    assert X_tr.shape[0] == n_workers * (cut - 4 - 3 + 1)


def test_evaluate_models_small(small_trace):
    res = evaluate_models_on_trace(
        small_trace.monitor,
        app="url_count",
        window=4,
        horizon=2,
        drnn_hidden=(8,),
        drnn_epochs=5,
        seed=0,
    )
    assert set(res.scores) == {"drnn", "arima", "svr"}
    for s in res.scores.values():
        assert np.isfinite(s["mape"]) and s["mape"] >= 0
        assert s["rmse"] >= 0 and s["mae"] >= 0
    # Traces align: every model predicted the same pooled test vector.
    lengths = {len(t[1]) for t in res.traces.values()}
    assert len(lengths) == 1
    rows = res.table_rows()
    assert len(rows) == 3


def test_evaluate_unknown_model_rejected(small_trace):
    with pytest.raises(ValueError, match="unknown model"):
        evaluate_models_on_trace(
            small_trace.monitor, models=["bogus"], window=4, horizon=2
        )


# --- reliability harness -----------------------------------------------------------


def test_default_faults_staggered():
    faults = default_faults(2, start=100, duration=100)
    assert faults[0].start == 100 and faults[1].start == 110
    assert faults[0].worker_id != faults[1].worker_id
    with pytest.raises(ValueError):
        default_faults(5, 0, 10)


def test_reliability_arm_validation():
    with pytest.raises(ValueError, match="unknown control"):
        run_reliability_scenario(control="bogus", duration=10)


def test_reliability_scenario_smoke_reactive():
    res = run_reliability_scenario(
        app="url_count",
        control="reactive",
        k_misbehaving=1,
        base_rate=150.0,
        duration=90.0,
        fault_start=30.0,
        fault_duration=50.0,
        seed=2,
    )
    assert res.label == "reactive"
    assert res.controller is not None
    assert res.result.acked > 1000
    assert np.isfinite(res.degradation_pct())


def test_reliability_slo_breach_both_arms_recover_only_controlled():
    """The paper's reliability claim through the SLO lens: the fault
    breaches the latency objective in BOTH arms, but only the DRNN arm
    reroutes around the slow worker and closes the episode; the baseline
    stays breached until the end of the run."""
    from repro.experiments.reliability import train_calibration_predictor
    from repro.obs import LatencySLO, ObservabilityConfig, SLOPolicy

    policy = SLOPolicy(
        rules=(LatencySLO(name="p99", quantile=0.99, bound=1.0),),
        eval_interval=5.0,
        window_intervals=6,
        breach_after=1,
        clear_after=2,
    )
    predictor = train_calibration_predictor(
        "url_count", 180.0, 3, window=4,
        calibration_duration=140.0, hidden=(12,), epochs=5,
    )
    episodes = {}
    for arm in (None, "drnn"):
        res = run_reliability_scenario(
            app="url_count",
            control=arm,
            k_misbehaving=1,
            base_rate=180.0,
            duration=240.0,
            fault_start=60.0,
            fault_duration=180.0,  # fault window reaches the end of the run
            slowdown_factor=25.0,
            seed=3,
            predictor=predictor if arm else None,
            control_interval=5.0,
            window=4,
            observability=ObservabilityConfig(metrics=True),
            slo=policy,
        )
        engine = res.sim.obs.slo
        assert engine is not None
        episodes[res.label] = engine.episodes("p99")
        summary = res.result.summary()
        assert summary["slo_breaches"] == len(engine.episodes())

    for label, eps in episodes.items():
        assert len(eps) == 1, f"{label}: expected one breach episode"
        assert eps[0].breach_time > 60.0  # after fault injection

    assert not episodes["baseline"][0].recovered
    assert episodes["drnn"][0].recovered
    baseline_breach = episodes["baseline"][0].breach_time
    drnn = episodes["drnn"][0]
    assert drnn.recover_time - drnn.breach_time < 240.0 - baseline_breach


def test_reliability_scenario_smoke_baseline():
    res = run_reliability_scenario(
        app="url_count",
        control=None,
        k_misbehaving=1,
        base_rate=150.0,
        duration=90.0,
        fault_start=30.0,
        fault_duration=50.0,
        seed=2,
    )
    assert res.label == "baseline"
    assert res.controller is None
    assert res.throughput_healthy() > 0
