"""Tests for the CSS-fitted ARIMA baseline."""

import numpy as np
import pytest

from repro.models import Arima, auto_arima
from repro.models.arima import difference, undifference_one


def ar1_series(phi=0.7, c=1.0, n=400, sigma=0.1, seed=0):
    rng = np.random.default_rng(seed)
    y = np.zeros(n)
    for t in range(1, n):
        y[t] = c + phi * y[t - 1] + rng.normal(0, sigma)
    return y


# --- differencing helpers -----------------------------------------------------


def test_difference_orders():
    x = np.array([1.0, 4.0, 9.0, 16.0])
    assert np.allclose(difference(x, 0), x)
    assert np.allclose(difference(x, 1), [3, 5, 7])
    assert np.allclose(difference(x, 2), [2, 2])


def test_undifference_one_inverts():
    x = np.array([1.0, 4.0, 9.0, 16.0, 25.0])
    for d in (1, 2):
        w = difference(x, d)
        # forecasting the *actual* next difference must reproduce x-like growth
        w_next_actual = difference(np.append(x, 36.0), d)[-1]
        assert undifference_one(x, d, w_next_actual) == pytest.approx(36.0)


# --- estimation -----------------------------------------------------------------


def test_ar1_coefficient_recovered():
    y = ar1_series(phi=0.7, c=1.0, n=600)
    model = Arima(p=1, d=0, q=0).fit(y)
    fr = model.fit_result
    assert fr.phi[0] == pytest.approx(0.7, abs=0.08)
    # implied mean: c / (1 - phi)
    implied_mean = fr.c / (1 - fr.phi[0])
    assert implied_mean == pytest.approx(np.mean(y), rel=0.1)


def test_random_walk_needs_differencing():
    rng = np.random.default_rng(1)
    y = np.cumsum(rng.normal(0.5, 1.0, size=500))
    model = Arima(p=0, d=1, q=0).fit(y)
    # After differencing, the constant should approximate the drift.
    assert model.fit_result.c == pytest.approx(0.5, abs=0.2)


def test_forecast_ar1_mean_reversion():
    y = ar1_series(phi=0.8, c=0.2, n=500, sigma=0.05)
    model = Arima(p=1, d=0, q=0).fit(y)
    f = model.forecast(steps=50)
    long_run = model.fit_result.c / (1 - model.fit_result.phi[0])
    assert f[-1] == pytest.approx(long_run, rel=0.05)


def test_rolling_one_step_beats_naive_on_ar_series():
    y = ar1_series(phi=0.9, c=0.0, n=500, sigma=0.2, seed=3)
    train, test = y[:400], y[400:]
    model = Arima(p=1, d=0, q=0).fit(train)
    preds = model.rolling_one_step(test)
    arima_mse = np.mean((preds - test) ** 2)
    naive_mse = np.mean((test[1:] - test[:-1]) ** 2)
    assert arima_mse < naive_mse


def test_rolling_predictions_length_matches():
    y = ar1_series(n=200)
    model = Arima(1, 0, 0).fit(y[:150])
    preds = model.rolling_one_step(y[150:])
    assert preds.shape == (50,)
    assert np.all(np.isfinite(preds))


# --- validation -------------------------------------------------------------------


def test_invalid_orders_rejected():
    with pytest.raises(ValueError):
        Arima(p=-1)
    with pytest.raises(ValueError):
        Arima(p=0, d=0, q=0)


def test_too_short_series_rejected():
    with pytest.raises(ValueError, match="too short"):
        Arima(p=3, d=1, q=2).fit(np.arange(8.0))


def test_nan_series_rejected():
    y = np.ones(100)
    y[5] = np.nan
    with pytest.raises(ValueError):
        Arima(1, 0, 0).fit(y)


def test_forecast_before_fit_raises():
    with pytest.raises(RuntimeError):
        Arima(1, 0, 0).forecast()
    with pytest.raises(RuntimeError):
        Arima(1, 0, 0).rolling_one_step([1.0])


def test_forecast_steps_validated():
    model = Arima(1, 0, 0).fit(ar1_series(n=100))
    with pytest.raises(ValueError):
        model.forecast(steps=0)


# --- auto order selection -------------------------------------------------------------


def test_auto_arima_prefers_ar_on_ar_series():
    y = ar1_series(phi=0.8, n=300, seed=5)
    best = auto_arima(y, max_p=2, max_d=1, max_q=1)
    assert best.p >= 1  # pure MA/no-AR orders lose on an AR(1) series
    assert best.fit_result is not None


def test_auto_arima_returns_fitted_model():
    y = ar1_series(n=200, seed=6)
    best = auto_arima(y)
    preds = best.rolling_one_step(y[-20:])
    assert np.all(np.isfinite(preds))
