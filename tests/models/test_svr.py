"""Tests for the epsilon-SVR baseline."""

import numpy as np
import pytest

from repro.models import SVRegressor
from repro.models.svr import linear_kernel, rbf_kernel


def test_rbf_kernel_properties():
    rng = np.random.default_rng(0)
    A = rng.normal(size=(10, 3))
    K = rbf_kernel(A, A, gamma=0.5)
    assert np.allclose(np.diag(K), 1.0)
    assert np.allclose(K, K.T)
    assert np.all((K > 0) & (K <= 1))


def test_linear_kernel_is_gram():
    A = np.array([[1.0, 0.0], [0.0, 2.0]])
    assert np.allclose(linear_kernel(A, A), [[1, 0], [0, 4]])


def test_fits_linear_function_with_linear_kernel():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(80, 2))
    y = 3.0 * X[:, 0] - 2.0 * X[:, 1] + 0.5
    model = SVRegressor(kernel="linear", C=100.0, epsilon=0.01).fit(X, y)
    pred = model.predict(X)
    assert np.mean((pred - y) ** 2) < 0.01


def test_fits_nonlinear_function_with_rbf():
    rng = np.random.default_rng(2)
    X = rng.uniform(-2, 2, size=(150, 1))
    y = np.sin(2 * X[:, 0])
    model = SVRegressor(kernel="rbf", C=50.0, epsilon=0.01).fit(X, y)
    X_test = np.linspace(-1.8, 1.8, 50)[:, None]
    pred = model.predict(X_test)
    assert np.mean((pred - np.sin(2 * X_test[:, 0])) ** 2) < 0.02


def test_epsilon_tube_tolerates_small_errors():
    # With a huge epsilon, the flat mean predictor inside the tube is optimal.
    rng = np.random.default_rng(3)
    X = rng.normal(size=(50, 1))
    y = 0.01 * X[:, 0] + 5.0
    model = SVRegressor(kernel="linear", C=1.0, epsilon=10.0).fit(X, y)
    pred = model.predict(X)
    assert np.allclose(pred, pred[0], atol=0.2)  # nearly constant
    assert pred[0] == pytest.approx(5.0, abs=0.5)


def test_window_input_flattened():
    rng = np.random.default_rng(4)
    X3 = rng.normal(size=(60, 4, 3))  # (n, window, d) stats windows
    y = X3[:, -1, 0]
    model = SVRegressor(kernel="rbf", C=20.0).fit(X3, y)
    pred = model.predict(X3)
    assert pred.shape == (60,)
    assert np.corrcoef(pred, y)[0, 1] > 0.8


def test_1d_input_promoted():
    x = np.linspace(0, 1, 30)
    y = 2 * x
    model = SVRegressor(kernel="linear", C=100.0, epsilon=0.001).fit(x, y)
    assert model.predict(x).shape == (30,)


def test_gamma_explicit_vs_heuristic():
    rng = np.random.default_rng(5)
    X = rng.normal(size=(40, 2))
    y = X[:, 0]
    m_auto = SVRegressor(kernel="rbf").fit(X, y)
    m_exp = SVRegressor(kernel="rbf", gamma=0.1).fit(X, y)
    assert m_auto.gamma_ is not None and m_auto.gamma_ > 0
    assert m_exp.gamma_ == 0.1


def test_constructor_validation():
    with pytest.raises(ValueError):
        SVRegressor(kernel="poly")
    with pytest.raises(ValueError):
        SVRegressor(C=0)
    with pytest.raises(ValueError):
        SVRegressor(epsilon=-1)


def test_predict_before_fit_raises():
    with pytest.raises(RuntimeError):
        SVRegressor().predict(np.zeros((2, 2)))


def test_feature_dim_mismatch_rejected():
    X = np.zeros((10, 3))
    model = SVRegressor(kernel="linear").fit(X, np.zeros(10))
    with pytest.raises(ValueError):
        model.predict(np.zeros((2, 4)))


def test_fit_validates_lengths():
    with pytest.raises(ValueError):
        SVRegressor().fit(np.zeros((5, 2)), np.zeros(4))
    with pytest.raises(ValueError):
        SVRegressor().fit(np.zeros((1, 2)), np.zeros(1))


def test_n_support_counts_active_points():
    rng = np.random.default_rng(6)
    X = rng.normal(size=(40, 1))
    y = X[:, 0]
    model = SVRegressor(kernel="rbf", C=10.0, epsilon=0.01).fit(X, y)
    assert 0 < model.n_support <= 40
