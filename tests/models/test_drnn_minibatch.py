"""Equivalence tests for mini-batched BPTT with gradient accumulation.

Three contracts:

* ``accum_steps`` with a single batch per epoch is *byte-identical* to
  the plain path — the accumulation machinery must be a no-op when there
  is nothing to accumulate;
* accumulating ``k`` equal-size mini-batches and applying one averaged
  step is numerically the full-batch gradient over those ``k*b`` samples
  (same permutation, same Adam state), so the two trainings track each
  other to float64 round-off;
* the validation-driven LR decay schedule halves the rate exactly when
  the validation loss stalls, and never when disabled.
"""

import numpy as np
import pytest

from repro.models import DRNNRegressor, TCNRegressor


def _data(n=32, T=5, d=3, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, T, d))
    y = np.tanh(X[:, -1, 0]) + 0.3 * X[:, :, 1].mean(axis=1)
    return X, y


def _params_bytes(model):
    return b"".join(model.params[k].tobytes() for k in sorted(model.params))


def _train(model_cls, X, y, **kw):
    defaults = dict(
        input_dim=X.shape[2], epochs=4, patience=0, seed=7, lr=5e-3
    )
    if model_cls is DRNNRegressor:
        defaults["hidden_sizes"] = (6,)
    else:
        defaults["channels"] = (6,)
    defaults.update(kw)
    model = model_cls(**defaults)
    model.fit(X, y)
    return model


# --- byte identity -----------------------------------------------------------------


@pytest.mark.parametrize("model_cls", [DRNNRegressor, TCNRegressor])
def test_single_batch_accumulation_is_byte_identical(model_cls):
    # One batch per epoch: the accumulation group holds exactly one
    # gradient, the average divides by 1.0 (exact in IEEE754), and the
    # resulting weights must match the plain path byte for byte.
    X, y = _data()
    plain = _train(model_cls, X, y, batch_size=len(X), accum_steps=1)
    accum = _train(model_cls, X, y, batch_size=len(X), accum_steps=4)
    assert _params_bytes(plain) == _params_bytes(accum)
    np.testing.assert_array_equal(plain.predict(X), accum.predict(X))


def test_accum_default_leaves_history_shape_unchanged():
    X, y = _data()
    model = _train(DRNNRegressor, X, y, batch_size=8, accum_steps=1)
    # 4 epochs, 4 mini-batches each: one loss entry and one lr entry per epoch
    assert len(model.history.train_loss) == 4
    assert len(model.history.lr) == 4
    assert all(lr == model.lr for lr in model.history.lr)


# --- accumulated steps == full-batch gradient --------------------------------------


@pytest.mark.parametrize("model_cls", [DRNNRegressor, TCNRegressor])
def test_accumulated_minibatches_match_large_batch(model_cls):
    # n=32 with b=8, k=4 partitions every permuted epoch into exactly one
    # accumulation group of the whole epoch, so the averaged gradient is
    # analytically the batch-32 gradient; only summation order differs.
    X, y = _data(n=32)
    small = _train(model_cls, X, y, batch_size=8, accum_steps=4)
    large = _train(model_cls, X, y, batch_size=32, accum_steps=1)
    for k in small.params:
        np.testing.assert_allclose(
            small.params[k], large.params[k], rtol=1e-7, atol=1e-9
        )


def test_partial_trailing_group_still_steps():
    # 20 samples, batch 8, accum 2: groups (8+8) and a trailing (4) —
    # the trailing partial group must still produce an optimiser step.
    X, y = _data(n=20)
    model = _train(DRNNRegressor, X, y, batch_size=8, accum_steps=2)
    init = DRNNRegressor(
        input_dim=X.shape[2], epochs=4, patience=0, seed=7, lr=5e-3,
        batch_size=8, accum_steps=2,
    )
    assert _params_bytes(model) != _params_bytes(init)
    assert np.all(np.isfinite(model.predict(X)))


# --- validation-driven LR decay ----------------------------------------------------


def test_lr_decay_halves_on_validation_plateau():
    # The chronological validation tail gets the *negated* mapping of the
    # training head: every step of training progress makes validation
    # worse, so with decay_patience=1 each post-first epoch halves the rate.
    rng = np.random.default_rng(11)
    X = rng.normal(size=(40, 4, 2))
    y = X[:, -1, 0].copy()
    y[-8:] = -y[-8:]
    model = DRNNRegressor(
        input_dim=2, hidden_sizes=(4,), epochs=10, seed=1, lr=8e-3,
        patience=10, val_fraction=0.2, lr_decay=0.5, decay_patience=1,
    )
    model.fit(X, y)
    lrs = model.history.lr
    assert lrs[-1] < model.lr  # at least one decay fired
    # Every recorded rate is the base rate times a power of the factor.
    for lr in lrs:
        ratio = lr / model.lr
        k = round(np.log(ratio) / np.log(0.5)) if ratio < 1.0 else 0
        assert np.isclose(ratio, 0.5**k, rtol=1e-12)
    # The schedule only ever decays.
    assert all(b <= a + 1e-18 for a, b in zip(lrs, lrs[1:]))


def test_lr_decay_disabled_by_default():
    X, y = _data()
    model = _train(
        DRNNRegressor, X, y, patience=5, epochs=6, batch_size=8
    )
    assert all(lr == model.lr for lr in model.history.lr)


def test_lr_decay_validation():
    with pytest.raises(ValueError, match="lr_decay"):
        DRNNRegressor(input_dim=2, lr_decay=1.5)
    with pytest.raises(ValueError, match="accum_steps"):
        DRNNRegressor(input_dim=2, accum_steps=0)


def test_minibatch_options_survive_save_load(tmp_path):
    X, y = _data()
    model = _train(
        DRNNRegressor, X, y, batch_size=8, accum_steps=2,
        lr_decay=0.5, decay_patience=2,
    )
    path = tmp_path / "m.npz"
    model.save(path)
    restored = DRNNRegressor.load(path)
    np.testing.assert_array_equal(model.predict(X), restored.predict(X))
