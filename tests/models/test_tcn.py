"""Tests for the causal temporal-convolution regressor."""

import numpy as np
import pytest

from repro.models import CausalConv1D, TCNRegressor, gradient_check


def toy_data(n=48, T=8, d=3, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, T, d))
    y = np.tanh(X[:, -1, 0]) + 0.5 * X[:, :, 1].mean(axis=1)
    return X, y


# --- gradients (the same bar the recurrent cells are held to) ---------------------


def test_tcn_gradients_match_finite_differences():
    X, y = toy_data(n=6, T=6, d=2)
    model = TCNRegressor(input_dim=2, channels=(5,), seed=1, l2=0.0)
    assert gradient_check(model, X, y, n_checks=15) < 1e-5


def test_tcn_deep_dilated_gradients_exact():
    X, y = toy_data(n=5, T=8, d=2)
    model = TCNRegressor(
        input_dim=2, channels=(4, 3), kernel_size=3, seed=2, l2=1e-4
    )
    assert gradient_check(model, X, y, n_checks=15) < 1e-5


# --- causality ---------------------------------------------------------------------


def test_conv_layer_is_causal():
    # Perturbing input at time t must not change outputs at times < t.
    rng = np.random.default_rng(3)
    layer = CausalConv1D(2, 4, kernel_size=3, dilation=2, rng=rng, name="c")
    X = rng.normal(size=(2, 10, 2))
    base = layer.forward(X).copy()
    X2 = X.copy()
    X2[:, 7, :] += 10.0
    out = layer.forward(X2)
    np.testing.assert_array_equal(out[:, :7], base[:, :7])
    assert not np.allclose(out[:, 7:], base[:, 7:])


def test_receptive_field_formula():
    model = TCNRegressor(input_dim=2, channels=(4, 4, 4), kernel_size=2)
    # kernel 2, dilations 1, 2, 4 -> 1 + 1 + 2 + 4 = 8 timesteps
    assert model.receptive_field == 8
    assert model.layers[0].receptive_field == 2
    assert model.layers[2].receptive_field == 5


# --- training / prediction --------------------------------------------------------


def test_tcn_learns_a_simple_function():
    rng = np.random.default_rng(4)
    X = rng.normal(size=(256, 6, 2))
    y = 1.5 * X[:, -1, 0] - 0.5 * X[:, -1, 1]
    model = TCNRegressor(
        input_dim=2, channels=(16,), epochs=120, lr=5e-3, patience=0, seed=4
    )
    model.fit(X, y)
    resid = np.mean((model.predict(X) - y) ** 2) / np.var(y)
    assert resid < 0.08


def test_tcn_uses_shared_training_loop_history():
    X, y = toy_data(n=32)
    model = TCNRegressor(input_dim=3, channels=(4,), epochs=3, patience=0)
    model.fit(X, y)
    assert len(model.history.train_loss) == 3
    assert len(model.history.lr) == 3
    assert model.history.stopped_epoch == 3


def test_tcn_float32_path():
    X, y = toy_data(n=24)
    model = TCNRegressor(
        input_dim=3, channels=(4,), epochs=2, patience=0, dtype="float32"
    )
    assert all(p.dtype == np.float32 for p in model.params.values())
    model.fit(X, y)
    pred = model.predict(X)
    assert pred.dtype == np.float32
    assert np.all(np.isfinite(pred))


def test_tcn_validation():
    with pytest.raises(ValueError, match="at least one"):
        TCNRegressor(input_dim=2, channels=())
    with pytest.raises(ValueError, match="dtype"):
        TCNRegressor(input_dim=2, dtype="float16")
    with pytest.raises(ValueError, match="accum_steps"):
        TCNRegressor(input_dim=2, accum_steps=0)
    with pytest.raises(ValueError, match="lr_decay"):
        TCNRegressor(input_dim=2, lr_decay=0.0)
    model = TCNRegressor(input_dim=3)
    with pytest.raises(ValueError, match="expected"):
        model.forward(np.zeros((2, 5, 4)))


def test_conv_layer_validation_and_backward_guard():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError, match="channel"):
        CausalConv1D(0, 4, 2, 1, rng, "c")
    with pytest.raises(ValueError, match="kernel_size"):
        CausalConv1D(2, 4, 0, 1, rng, "c")
    layer = CausalConv1D(2, 3, 2, 1, rng, "c")
    with pytest.raises(RuntimeError, match="forward"):
        layer.backward(np.zeros((1, 4, 3)))


def test_tcn_parameter_count():
    model = TCNRegressor(input_dim=3, channels=(4, 5), kernel_size=2)
    expected = (
        (2 * 3 * 4 + 4)  # layer 0: K*ci*co + biases
        + (2 * 4 * 5 + 5)  # layer 1
        + (5 * 1 + 1)  # dense head
    )
    assert model.n_parameters == expected
