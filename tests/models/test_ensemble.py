"""Tests for the rolling-error ensemble auto-selector."""

import numpy as np
import pytest

from repro.models import EnsemblePredictor, rolling_selection


def test_selector_switches_to_the_better_model():
    n = 30
    actual = np.linspace(0.0, 3.0, n)
    good = actual + 0.01
    bad = actual + 5.0
    combined, chosen = rolling_selection(
        {"good": good, "bad": bad}, actual, window=4
    )
    assert chosen[0] == "<mean>"
    assert all(c == "good" for c in chosen[1:])
    np.testing.assert_array_equal(combined[1:], good[1:])
    # Cold-start point is the plain mean of the base predictions.
    assert combined[0] == pytest.approx((good[0] + bad[0]) / 2)


def test_selection_is_strictly_causal():
    # Model "late" is perfect except for a huge error at point t=5; the
    # selector may only react *after* observing it, so point 5 itself
    # still follows "late" (its rolling error through point 4 is zero).
    actual = np.zeros(12)
    late = np.zeros(12)
    late[5] = 100.0
    other = np.full(12, 0.5)
    combined, chosen = rolling_selection(
        {"late": late, "other": other}, actual, window=3
    )
    assert chosen[5] == "late"
    assert combined[5] == 100.0
    assert chosen[6] == "other"  # reacts one point later
    # The window forgets: 3 points after the spike, "late" is best again.
    assert chosen[9] == "late"


def test_rolling_selection_tie_breaks_by_sorted_name():
    actual = np.zeros(6)
    same = np.ones(6)
    combined, chosen = rolling_selection(
        {"b": same.copy(), "a": same.copy()}, actual, window=2
    )
    assert all(c == "a" for c in chosen[1:])


def test_rolling_selection_validation():
    with pytest.raises(ValueError, match="at least 2"):
        rolling_selection({"only": np.ones(3)}, np.zeros(3))
    with pytest.raises(ValueError, match="window"):
        rolling_selection(
            {"a": np.ones(3), "b": np.ones(3)}, np.zeros(3), window=0
        )
    with pytest.raises(ValueError, match="length mismatch"):
        rolling_selection({"a": np.ones(3), "b": np.ones(4)}, np.zeros(3))


def test_combined_never_worse_than_worst_base_model():
    rng = np.random.default_rng(0)
    actual = np.sin(np.arange(50) / 5.0)
    preds = {
        "m1": actual + rng.normal(0, 0.05, 50),
        "m2": actual + rng.normal(0, 0.5, 50),
        "m3": np.full(50, actual.mean()),
    }
    combined, _ = rolling_selection(preds, actual, window=6)
    worst = max(np.mean(np.abs(p - actual)) for p in preds.values())
    assert np.mean(np.abs(combined - actual)) < worst


# --- online form -------------------------------------------------------------------


def test_online_predictor_follows_rolling_winner():
    ens = EnsemblePredictor(
        {"good": lambda x: x, "bad": lambda x: x + 10.0}, window=4
    )
    assert ens.names == ("bad", "good")
    # Cold start: no scored history -> mean of both predictions.
    assert ens.predict(1.0) == pytest.approx(6.0)
    assert ens.last_choice == "<mean>"
    ens.observe(1.0)
    assert ens.predict(2.0) == pytest.approx(2.0)
    assert ens.last_choice == "good"


def test_online_predictor_matches_posthoc_selection():
    # Interleaved predict/observe over aligned series must reproduce the
    # post-hoc combiner (same window, same tie-break rules).
    actual = np.sin(np.arange(25) / 3.0)
    pred_a = actual + 0.3
    pred_b = np.roll(actual, 1)
    combined_ref, chosen_ref = rolling_selection(
        {"a": pred_a, "b": pred_b}, actual, window=5
    )
    series = {"a": iter(pred_a), "b": iter(pred_b)}
    ens = EnsemblePredictor(
        {name: lambda it=it: next(it) for name, it in series.items()},
        window=5,
    )
    online = []
    for t in range(len(actual)):
        online.append(ens.predict())
        ens.observe(actual[t])
    np.testing.assert_allclose(online, combined_ref, atol=1e-12)


def test_online_predictor_validation():
    with pytest.raises(ValueError, match="at least 2"):
        EnsemblePredictor({"a": lambda: 0.0})
    with pytest.raises(ValueError, match="window"):
        EnsemblePredictor({"a": lambda: 0.0, "b": lambda: 1.0}, window=0)
    ens = EnsemblePredictor({"a": lambda: 0.0, "b": lambda: 1.0})
    with pytest.raises(RuntimeError, match="predict"):
        ens.observe(1.0)
