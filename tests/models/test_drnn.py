"""Tests for the NumPy DRNN: exact gradients, learning, API contracts."""

import numpy as np
import pytest

from repro.models import Adam, DRNNRegressor, gradient_check
from repro.models.drnn import LSTMLayer, clip_by_global_norm


def toy_data(n=64, T=6, d=3, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, T, d))
    # Target: a nonlinear function of the window that an RNN can learn.
    y = np.tanh(X[:, -1, 0]) + 0.5 * X[:, :, 1].mean(axis=1)
    return X, y


# --- gradient correctness (the critical test for a from-scratch net) -----------


def test_bptt_gradients_match_finite_differences_single_layer():
    X, y = toy_data(n=8, T=5, d=3)
    model = DRNNRegressor(input_dim=3, hidden_sizes=(7,), seed=1, l2=0.0)
    assert gradient_check(model, X, y, n_checks=15) < 1e-5


def test_bptt_gradients_match_finite_differences_deep():
    X, y = toy_data(n=6, T=4, d=2)
    model = DRNNRegressor(input_dim=2, hidden_sizes=(5, 4, 3), seed=2, l2=0.0)
    assert gradient_check(model, X, y, n_checks=15) < 1e-5


def test_gradients_with_l2_also_exact():
    X, y = toy_data(n=6, T=4, d=2)
    model = DRNNRegressor(input_dim=2, hidden_sizes=(5,), seed=3, l2=1e-3)
    assert gradient_check(model, X, y, n_checks=15) < 1e-5


# --- learning behaviour -------------------------------------------------------------


def test_fit_reduces_training_loss():
    X, y = toy_data(n=128, T=6, d=3)
    model = DRNNRegressor(
        input_dim=3, hidden_sizes=(16,), epochs=30, patience=0, seed=4
    )
    model.fit(X, y)
    losses = model.history.train_loss
    assert losses[-1] < losses[0] * 0.5


def test_fit_learns_linear_last_step_function():
    rng = np.random.default_rng(5)
    X = rng.normal(size=(256, 5, 2))
    y = 2.0 * X[:, -1, 0] - 1.0 * X[:, -1, 1]
    model = DRNNRegressor(
        input_dim=2, hidden_sizes=(24,), epochs=120, lr=5e-3, patience=0, seed=5
    )
    model.fit(X, y)
    pred = model.predict(X)
    resid = np.mean((pred - y) ** 2) / np.var(y)
    assert resid < 0.05  # explains >95% of variance


def test_early_stopping_restores_best_weights():
    X, y = toy_data(n=96, T=5, d=3)
    model = DRNNRegressor(
        input_dim=3,
        hidden_sizes=(8,),
        epochs=200,
        patience=5,
        val_fraction=0.25,
        seed=6,
    )
    model.fit(X, y)
    assert model.history.stopped_epoch <= 200
    assert len(model.history.val_loss) == len(model.history.train_loss)
    # The kept weights correspond to the best validation loss seen.
    X_val = X[-24:]
    y_val = y[-24:]
    final_val = float(np.mean((model.predict(X_val) - y_val) ** 2))
    assert final_val <= min(model.history.val_loss) + 1e-9


def test_deterministic_given_seed():
    X, y = toy_data()
    m1 = DRNNRegressor(input_dim=3, hidden_sizes=(8,), epochs=5, seed=7).fit(X, y)
    m2 = DRNNRegressor(input_dim=3, hidden_sizes=(8,), epochs=5, seed=7).fit(X, y)
    assert np.allclose(m1.predict(X), m2.predict(X))


# --- API contracts -----------------------------------------------------------------


def test_input_shape_validated():
    model = DRNNRegressor(input_dim=3, hidden_sizes=(4,))
    with pytest.raises(ValueError):
        model.predict(np.zeros((5, 4)))  # not 3-D
    with pytest.raises(ValueError):
        model.predict(np.zeros((5, 4, 2)))  # wrong feature dim


def test_fit_validates_lengths():
    model = DRNNRegressor(input_dim=2, hidden_sizes=(4,))
    with pytest.raises(ValueError):
        model.fit(np.zeros((8, 3, 2)), np.zeros(7))
    with pytest.raises(ValueError):
        model.fit(np.zeros((2, 3, 2)), np.zeros(2))  # too few samples


def test_constructor_validation():
    with pytest.raises(ValueError):
        DRNNRegressor(input_dim=2, hidden_sizes=())
    with pytest.raises(ValueError):
        LSTMLayer(0, 4, np.random.default_rng(0), "x")


def test_n_parameters_counts_depth():
    shallow = DRNNRegressor(input_dim=3, hidden_sizes=(8,))
    deep = DRNNRegressor(input_dim=3, hidden_sizes=(8, 8))
    assert deep.n_parameters > shallow.n_parameters


def test_predictions_finite():
    X, y = toy_data(n=32)
    model = DRNNRegressor(input_dim=3, hidden_sizes=(6,), epochs=3, seed=8)
    model.fit(X, y)
    assert np.all(np.isfinite(model.predict(X)))


# --- optimizer utilities ------------------------------------------------------------


def test_adam_decreases_quadratic():
    rng = np.random.default_rng(9)
    params = {"w": rng.normal(size=5)}
    target = np.arange(5.0)
    opt = Adam(params, lr=0.1)
    for _ in range(300):
        grads = {"w": 2 * (params["w"] - target)}
        opt.step(grads)
    assert np.allclose(params["w"], target, atol=1e-2)


def test_adam_lr_validation():
    with pytest.raises(ValueError):
        Adam({"w": np.zeros(1)}, lr=0.0)


def test_clip_by_global_norm():
    grads = {"a": np.array([3.0, 4.0])}  # norm 5
    norm = clip_by_global_norm(grads, max_norm=1.0)
    assert norm == pytest.approx(5.0)
    assert np.linalg.norm(grads["a"]) == pytest.approx(1.0, rel=1e-6)
    grads2 = {"a": np.array([0.3, 0.4])}
    clip_by_global_norm(grads2, max_norm=1.0)
    assert np.allclose(grads2["a"], [0.3, 0.4])  # under the cap: untouched


def test_lstm_layer_forward_shapes():
    rng = np.random.default_rng(10)
    layer = LSTMLayer(3, 5, rng, "l")
    H = layer.forward(rng.normal(size=(4, 7, 3)))
    assert H.shape == (4, 7, 5)
    assert np.all(np.abs(H) <= 1.0)  # h = o * tanh(c) is bounded


def test_lstm_backward_before_forward_raises():
    layer = LSTMLayer(2, 3, np.random.default_rng(0), "l")
    with pytest.raises(RuntimeError):
        layer.backward(np.zeros((1, 1, 3)))
