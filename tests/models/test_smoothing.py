"""Property tests pinning exponential smoothing against a naive reference.

The vectorised implementation in :mod:`repro.models.smoothing` must match
a transliteration of the textbook additive Holt-Winters recursions to
1e-10 on arbitrary series, for every variant (simple / trend / seasonal /
both).  The reference below is deliberately the dumbest possible loop —
scalar state, Python floats, no shortcuts — so any cleverness in the
production code is checked against the formulas themselves.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import ExponentialSmoothing, auto_smoothing
from repro.models.smoothing import SmoothingFit


def naive_reference(y, alpha, beta, gamma, trend, m, steps):
    """Loop transliteration of the additive smoothing recursions.

    Returns ``(forecast, sse)`` with one-step-ahead SSE accumulated over
    the post-initialisation observations, exactly the quantity the
    production grid search scores.
    """
    y = [float(v) for v in y]
    if m >= 2:
        level = sum(y[:m]) / m
        b = (sum(y[m : 2 * m]) / m - sum(y[:m]) / m) / m if trend else 0.0
        season = [v - level for v in y[:m]]
        start = m
    else:
        level = y[0]
        b = y[1] - y[0] if trend else 0.0
        season = []
        start = 1
    sse = 0.0
    for t in range(start, len(y)):
        s_prev = season[t % m] if m >= 2 else 0.0
        err = y[t] - (level + b + s_prev)
        sse += err * err
        l_prev = level
        level = alpha * (y[t] - s_prev) + (1.0 - alpha) * (level + b)
        if trend:
            b = beta * (level - l_prev) + (1.0 - beta) * b
        if m >= 2:
            season[t % m] = gamma * (y[t] - level) + (1.0 - gamma) * s_prev
    out = []
    for h in range(1, steps + 1):
        s = season[(len(y) + h - 1) % m] if m >= 2 else 0.0
        out.append(level + h * b + s)
    return np.array(out), sse


def fitted(y, alpha, beta, gamma, trend, m):
    """Production model with every weight pinned (grid search skipped)."""
    return ExponentialSmoothing(
        trend=trend,
        seasonal_periods=m,
        alpha=alpha,
        beta=beta if trend else None,
        gamma=gamma if m >= 2 else None,
    ).fit(y)


weights = st.floats(min_value=0.05, max_value=0.95)
values = st.floats(min_value=-100.0, max_value=100.0)


@given(
    y=st.lists(values, min_size=8, max_size=40),
    alpha=weights,
    beta=weights,
    trend=st.booleans(),
    steps=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=60, deadline=None)
def test_nonseasonal_matches_naive_reference(y, alpha, beta, trend, steps):
    model = fitted(y, alpha, beta, None, trend, 0)
    ref, sse = naive_reference(y, alpha, beta, 0.0, trend, 0, steps)
    np.testing.assert_allclose(model.forecast(steps), ref, atol=1e-10)
    assert abs(model.fit_result.sse - sse) < 1e-10 * max(1.0, sse)


@given(
    y=st.lists(values, min_size=12, max_size=40),
    alpha=weights,
    beta=weights,
    gamma=weights,
    trend=st.booleans(),
    m=st.integers(min_value=2, max_value=5),
    steps=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_seasonal_matches_naive_reference(y, alpha, beta, gamma, trend, m, steps):
    need = 2 * m if trend else m + 1
    if len(y) < need:
        y = y + y  # double up instead of discarding the example
    model = fitted(y, alpha, beta, gamma, trend, m)
    ref, sse = naive_reference(y, alpha, beta, gamma, trend, m, steps)
    np.testing.assert_allclose(model.forecast(steps), ref, atol=1e-10)
    assert abs(model.fit_result.sse - sse) < 1e-10 * max(1.0, sse)


@given(
    y=st.lists(values, min_size=10, max_size=30),
    alpha=weights,
    steps=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_forecast_from_training_series_equals_forecast(y, alpha, steps):
    # forecast_from over the very series the model was fitted on must
    # reproduce forecast() — the walk-forward primitive starts honest.
    model = fitted(y, alpha, None, None, False, 0)
    np.testing.assert_allclose(
        model.forecast_from(y, steps), model.forecast(steps), atol=1e-12
    )


# --- deterministic edge cases -------------------------------------------------------


def test_constant_series_forecasts_the_constant():
    y = np.full(20, 7.25)
    for model in (
        fitted(y, 0.3, None, None, False, 0),
        fitted(y, 0.3, 0.1, None, True, 0),
        fitted(y, 0.3, 0.1, 0.1, True, 4),
    ):
        np.testing.assert_allclose(model.forecast(5), 7.25, atol=1e-10)


def test_linear_trend_extrapolated_exactly():
    y = 2.0 + 0.5 * np.arange(30)
    model = fitted(y, 0.5, 0.1, None, True, 0)
    np.testing.assert_allclose(
        model.forecast(3), [17.0, 17.5, 18.0], atol=1e-9
    )


def test_pure_seasonal_pattern_recovered():
    pattern = [1.0, 5.0, 2.0, 8.0]
    y = np.tile(pattern, 8)
    model = fitted(y, 0.3, None, 0.1, False, 4)
    np.testing.assert_allclose(model.forecast(4), pattern, atol=1e-8)


def test_short_series_rejected():
    with pytest.raises(ValueError, match="too short"):
        ExponentialSmoothing().fit([1.0])
    with pytest.raises(ValueError, match="too short"):
        ExponentialSmoothing(trend=True, seasonal_periods=4).fit(
            np.arange(7.0)  # needs 2*m = 8
        )


def test_min_history_per_variant():
    assert ExponentialSmoothing().min_history == 2
    assert ExponentialSmoothing(trend=True).min_history == 2
    assert ExponentialSmoothing(seasonal_periods=4).min_history == 5
    assert (
        ExponentialSmoothing(trend=True, seasonal_periods=4).min_history == 8
    )


def test_parameter_validation():
    with pytest.raises(ValueError, match="seasonal_periods"):
        ExponentialSmoothing(seasonal_periods=1)
    with pytest.raises(ValueError, match="alpha"):
        ExponentialSmoothing(alpha=0.0)
    with pytest.raises(ValueError, match="gamma"):
        ExponentialSmoothing(seasonal_periods=2, gamma=1.5)
    with pytest.raises(ValueError, match="NaN"):
        ExponentialSmoothing().fit([1.0, np.nan, 2.0])


def test_forecast_before_fit_raises():
    with pytest.raises(RuntimeError, match="fit"):
        ExponentialSmoothing().forecast(1)
    with pytest.raises(RuntimeError, match="fit"):
        ExponentialSmoothing().forecast_from([1.0, 2.0, 3.0], 1)


def test_forecast_from_too_short_history_raises():
    model = fitted(np.arange(20.0), 0.3, None, None, False, 0)
    with pytest.raises(ValueError, match="history too short"):
        model.forecast_from([1.0], steps=1)


def test_grid_search_runs_when_weights_free():
    rng = np.random.default_rng(0)
    y = np.sin(np.arange(40) / 3.0) + 0.05 * rng.normal(size=40)
    model = ExponentialSmoothing(trend=True).fit(y)
    fr = model.fit_result
    assert isinstance(fr, SmoothingFit)
    assert 0.0 < fr.alpha <= 1.0 and 0.0 < fr.beta <= 1.0
    assert np.isfinite(fr.aic)


def test_auto_smoothing_prefers_trend_on_trending_series():
    y = 1.0 + 0.8 * np.arange(40)
    model = auto_smoothing(y)
    assert model.trend  # Holt beats SES by AIC on a clean ramp
    np.testing.assert_allclose(model.forecast(2), [33.0, 33.8], atol=1e-6)


def test_auto_smoothing_considers_seasonal_candidates():
    pattern = np.array([0.0, 10.0, 3.0, 6.0])
    y = np.tile(pattern, 10)
    model = auto_smoothing(y, seasonal_periods=4)
    assert model.m == 4
    np.testing.assert_allclose(model.forecast(4), pattern, atol=1e-6)


def test_auto_smoothing_too_short_raises():
    with pytest.raises(ValueError, match="too short"):
        auto_smoothing([5.0])
