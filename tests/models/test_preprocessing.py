"""Tests for scaling and supervised-window construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import StandardScaler, make_supervised_windows, train_test_split_series


# --- scaler ---------------------------------------------------------------------


def test_scaler_zero_mean_unit_std():
    rng = np.random.default_rng(0)
    X = rng.normal(5.0, 3.0, size=(200, 4))
    Z = StandardScaler().fit_transform(X)
    assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
    assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)


def test_scaler_roundtrip():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(50, 3)) * [1, 10, 100] + [0, -5, 7]
    sc = StandardScaler().fit(X)
    assert np.allclose(sc.inverse_transform(sc.transform(X)), X)


def test_scaler_constant_feature_safe():
    X = np.column_stack([np.ones(10), np.arange(10.0)])
    Z = StandardScaler().fit_transform(X)
    assert np.all(np.isfinite(Z))
    assert np.allclose(Z[:, 0], 0.0)


def test_scaler_1d_input():
    x = np.array([1.0, 2.0, 3.0])
    sc = StandardScaler().fit(x)
    z = sc.transform(x)
    assert z.shape == (3,)
    assert np.allclose(sc.inverse_transform(z), x)


def test_scaler_unfitted_raises():
    with pytest.raises(RuntimeError):
        StandardScaler().transform(np.zeros((2, 2)))
    with pytest.raises(RuntimeError):
        StandardScaler().inverse_transform(np.zeros((2, 2)))


# --- windows ------------------------------------------------------------------------


def test_windows_shapes_and_alignment():
    T, d, w = 20, 3, 5
    feats = np.arange(T * d, dtype=float).reshape(T, d)
    target = np.arange(T, dtype=float) * 10
    X, y = make_supervised_windows(feats, target, window=w, horizon=1)
    assert X.shape == (T - w, w, d)
    assert y.shape == (T - w,)
    # X[0] covers rows 0..4; y[0] is target at row 5.
    assert np.allclose(X[0], feats[0:5])
    assert y[0] == target[5]
    assert np.allclose(X[-1], feats[T - 1 - w : T - 1])
    assert y[-1] == target[T - 1]


def test_windows_horizon():
    T = 15
    feats = np.arange(T, dtype=float)
    X, y = make_supervised_windows(feats, feats, window=4, horizon=3)
    # y[i] = target[i + 4 + 3 - 1]
    assert y[0] == 6.0
    assert X.shape[0] == T - 4 - 3 + 1


def test_windows_1d_features_promoted():
    x = np.arange(10.0)
    X, y = make_supervised_windows(x, x, window=3)
    assert X.shape == (7, 3, 1)


def test_windows_validation():
    x = np.arange(10.0)
    with pytest.raises(ValueError):
        make_supervised_windows(x, x[:5], window=3)
    with pytest.raises(ValueError):
        make_supervised_windows(x, x, window=0)
    with pytest.raises(ValueError):
        make_supervised_windows(x, x, window=3, horizon=0)
    with pytest.raises(ValueError):
        make_supervised_windows(x[:3], x[:3], window=5)


def test_windows_are_writable_copies():
    x = np.arange(10.0)
    X, _ = make_supervised_windows(x, x, window=3)
    X[0, 0, 0] = 999.0  # must not raise (no read-only views leak out)
    assert x[0] == 0.0  # and must not alias the source


@settings(max_examples=30, deadline=None)
@given(
    T=st.integers(min_value=6, max_value=60),
    w=st.integers(min_value=1, max_value=5),
    h=st.integers(min_value=1, max_value=3),
)
def test_windows_count_property(T, w, h):
    if T - w - h + 1 < 1:
        return
    x = np.arange(float(T))
    X, y = make_supervised_windows(x, x, window=w, horizon=h)
    assert X.shape[0] == y.shape[0] == T - w - h + 1
    # Every window is a contiguous slice and every target is h past it.
    for i in range(0, X.shape[0], max(1, X.shape[0] // 5)):
        assert np.allclose(X[i, :, 0], x[i : i + w])
        assert y[i] == x[i + w + h - 1]


# --- split ------------------------------------------------------------------------------


def test_split_chronological():
    X = np.arange(10)[:, None]
    y = np.arange(10)
    X_tr, X_te, y_tr, y_te = train_test_split_series(X, y, train_fraction=0.7)
    assert list(y_tr) == list(range(7))
    assert list(y_te) == [7, 8, 9]


def test_split_validation():
    X = np.arange(4)[:, None]
    y = np.arange(4)
    with pytest.raises(ValueError):
        train_test_split_series(X, y, train_fraction=0.0)
    with pytest.raises(ValueError):
        train_test_split_series(X, y[:2])
    with pytest.raises(ValueError):
        train_test_split_series(X[:1], y[:1], train_fraction=0.5)
