"""Tests for ARIMA multi-step walk-forward forecasting (forecast_from)."""

import numpy as np
import pytest

from repro.models import Arima


def ar1(phi=0.8, c=0.0, n=400, sigma=0.1, seed=0):
    rng = np.random.default_rng(seed)
    y = np.zeros(n)
    for t in range(1, n):
        y[t] = c + phi * y[t - 1] + rng.normal(0, sigma)
    return y


def test_forecast_from_matches_forecast_on_train_tail():
    y = ar1(n=300)
    model = Arima(1, 0, 0).fit(y)
    # Continuing from the full training history must equal forecast().
    assert np.allclose(model.forecast_from(y, steps=5), model.forecast(steps=5))


def test_forecast_from_decays_towards_mean():
    y = ar1(phi=0.7, c=0.3, n=500, sigma=0.05)
    model = Arima(1, 0, 0).fit(y)
    history = y[:250]
    f = model.forecast_from(history, steps=40)
    long_run = model.fit_result.c / (1 - model.fit_result.phi[0])
    # Multi-step AR(1) converges geometrically to the long-run mean.
    assert abs(f[-1] - long_run) < abs(f[0] - long_run) + 1e-9
    assert f[-1] == pytest.approx(long_run, rel=0.1)


def test_forecast_from_requires_fit_and_valid_args():
    model = Arima(1, 0, 0)
    with pytest.raises(RuntimeError):
        model.forecast_from([1.0, 2.0], steps=2)
    model.fit(ar1(n=100))
    with pytest.raises(ValueError):
        model.forecast_from([1.0] * 10, steps=0)
    with pytest.raises(ValueError):
        model.forecast_from([1.0], steps=1)  # history too short


def test_forecast_from_with_differencing():
    rng = np.random.default_rng(3)
    y = np.cumsum(rng.normal(1.0, 0.1, size=300))  # drifting random walk
    model = Arima(0, 1, 0).fit(y)
    f = model.forecast_from(y[:200], steps=10)
    # Drift continues: forecast increments approximate the drift rate.
    increments = np.diff(np.concatenate([[y[199]], f]))
    assert np.allclose(increments, 1.0, atol=0.2)


def test_h_step_error_grows_with_horizon():
    y = ar1(phi=0.9, n=600, sigma=0.2, seed=5)
    model = Arima(1, 0, 0).fit(y[:400])
    errs = {}
    for h in (1, 5):
        preds = []
        for j in range(400, 580):
            preds.append(model.forecast_from(y[: j - h + 1], steps=h)[-1])
        errs[h] = float(np.mean((np.array(preds) - y[400:580]) ** 2))
    assert errs[5] > errs[1]  # longer lead = harder problem
