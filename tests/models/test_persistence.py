"""Tests for DRNN checkpointing."""

import numpy as np
import pytest

from repro.models import DRNNRegressor


def test_save_load_roundtrip(tmp_path):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(32, 5, 3))
    y = X[:, -1, 0]
    model = DRNNRegressor(input_dim=3, hidden_sizes=(6, 4), epochs=3, seed=1)
    model.fit(X, y)
    path = tmp_path / "model.npz"
    model.save(path)
    restored = DRNNRegressor.load(path)
    assert restored.hidden_sizes == (6, 4)
    assert restored.input_dim == 3
    assert np.allclose(restored.predict(X), model.predict(X))


def test_load_missing_param_rejected(tmp_path):
    model = DRNNRegressor(input_dim=2, hidden_sizes=(4,))
    path = tmp_path / "model.npz"
    meta = np.array([2, 1, 4], dtype=np.int64)
    params = {k: v for k, v in model.params.items() if not k.startswith("head")}
    np.savez(path, __meta__=meta, **params)
    with pytest.raises(ValueError, match="missing"):
        DRNNRegressor.load(path)


def test_load_shape_mismatch_rejected(tmp_path):
    model = DRNNRegressor(input_dim=2, hidden_sizes=(4,))
    path = tmp_path / "model.npz"
    bad = {k: np.zeros((1, 1)) for k in model.params}
    meta = np.array([2, 1, 4], dtype=np.int64)
    np.savez(path, __meta__=meta, **bad)
    with pytest.raises(ValueError, match="shape mismatch"):
        DRNNRegressor.load(path)
