"""Tests for forecast accuracy metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.models import mae, mape, r2_score, rmse, smape


def test_perfect_prediction_zero_error():
    y = [1.0, 2.0, 3.0]
    assert mape(y, y) == 0.0
    assert smape(y, y) == 0.0
    assert rmse(y, y) == 0.0
    assert mae(y, y) == 0.0
    assert r2_score(y, y) == 1.0


def test_mape_known_value():
    assert mape([100.0, 200.0], [110.0, 180.0]) == pytest.approx(10.0)


def test_rmse_known_value():
    assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))


def test_mae_known_value():
    assert mae([1.0, 2.0], [2.0, 0.0]) == pytest.approx(1.5)


def test_r2_of_mean_predictor_is_zero():
    y = np.array([1.0, 2.0, 3.0, 4.0])
    pred = np.full(4, y.mean())
    assert r2_score(y, pred) == pytest.approx(0.0)


def test_r2_constant_target():
    assert r2_score([5.0, 5.0], [5.0, 5.0]) == 1.0
    assert r2_score([5.0, 5.0], [4.0, 6.0]) == 0.0


def test_smape_bounded_and_zero_safe():
    assert smape([0.0, 0.0], [0.0, 1.0]) <= 200.0
    assert smape([0.0], [0.0]) == 0.0


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        mape([1.0, 2.0], [1.0])


def test_empty_rejected():
    with pytest.raises(ValueError):
        rmse([], [])


def test_nan_rejected():
    with pytest.raises(ValueError):
        mae([np.nan], [1.0])
    with pytest.raises(ValueError):
        mae([1.0], [np.inf])


@given(
    st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
    st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
)
def test_metrics_nonnegative_property(a, b):
    n = min(len(a), len(b))
    t, p = a[:n], b[:n]
    assert rmse(t, p) >= 0
    assert mae(t, p) >= 0
    assert mape(t, p) >= 0
    assert 0 <= smape(t, p) <= 200 + 1e-9


@given(st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=2, max_size=30))
def test_rmse_dominates_mae_property(vals):
    # RMSE >= MAE always (Jensen).
    t = np.zeros(len(vals))
    assert rmse(t, vals) >= mae(t, vals) - 1e-12
