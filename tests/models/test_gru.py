"""Tests for the GRU variant of the DRNN."""

import numpy as np
import pytest

from repro.models import DRNNRegressor, GRULayer, gradient_check


def toy_data(n=48, T=5, d=3, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, T, d))
    y = np.tanh(X[:, -1, 0]) + 0.5 * X[:, :, 1].mean(axis=1)
    return X, y


def test_gru_gradients_match_finite_differences():
    X, y = toy_data(n=6, T=4, d=2)
    model = DRNNRegressor(
        input_dim=2, hidden_sizes=(5,), seed=1, l2=0.0, cell="gru"
    )
    assert gradient_check(model, X, y, n_checks=15) < 1e-5


def test_gru_deep_gradients_exact():
    X, y = toy_data(n=5, T=4, d=2)
    model = DRNNRegressor(
        input_dim=2, hidden_sizes=(4, 3), seed=2, l2=1e-4, cell="gru"
    )
    assert gradient_check(model, X, y, n_checks=15) < 1e-5


def test_gru_learns():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(256, 5, 2))
    y = 1.5 * X[:, -1, 0] - 0.5 * X[:, -1, 1]
    model = DRNNRegressor(
        input_dim=2, hidden_sizes=(24,), epochs=120, lr=5e-3, patience=0,
        seed=3, cell="gru",
    )
    model.fit(X, y)
    resid = np.mean((model.predict(X) - y) ** 2) / np.var(y)
    assert resid < 0.08


def test_gru_fewer_parameters_than_lstm():
    lstm = DRNNRegressor(input_dim=4, hidden_sizes=(16,), cell="lstm")
    gru = DRNNRegressor(input_dim=4, hidden_sizes=(16,), cell="gru")
    assert gru.n_parameters < lstm.n_parameters


def test_gru_layer_shapes_and_bounds():
    rng = np.random.default_rng(4)
    layer = GRULayer(3, 6, rng, "g")
    H = layer.forward(rng.normal(size=(4, 7, 3)))
    assert H.shape == (4, 7, 6)
    assert np.all(np.abs(H) <= 1.0)  # convex mix of tanh candidates


def test_gru_layer_backward_before_forward_raises():
    layer = GRULayer(2, 3, np.random.default_rng(0), "g")
    with pytest.raises(RuntimeError):
        layer.backward(np.zeros((1, 1, 3)))


def test_cell_validation():
    with pytest.raises(ValueError):
        DRNNRegressor(input_dim=2, hidden_sizes=(4,), cell="rnn")


def test_gru_save_load_roundtrip(tmp_path):
    X, y = toy_data(n=16)
    model = DRNNRegressor(
        input_dim=3, hidden_sizes=(5,), epochs=2, seed=5, cell="gru"
    )
    model.fit(X, y)
    path = tmp_path / "gru.npz"
    model.save(path)
    restored = DRNNRegressor.load(path)
    assert restored.cell == "gru"
    assert np.allclose(restored.predict(X), model.predict(X))
