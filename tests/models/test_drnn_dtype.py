"""Tests for the DRNN's dtype option and preallocated-buffer reuse."""

import numpy as np
import pytest

from repro.models import DRNNRegressor


def _data(n=24, T=5, d=4, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, T, d)), rng.normal(size=n)


def test_invalid_dtype_rejected():
    with pytest.raises(ValueError, match="dtype"):
        DRNNRegressor(input_dim=3, dtype="float16")


@pytest.mark.parametrize("cell", ["lstm", "gru"])
def test_float32_trains_and_predicts(cell):
    X, y = _data()
    model = DRNNRegressor(
        input_dim=4, hidden_sizes=(6,), epochs=2, patience=0,
        seed=0, cell=cell, dtype="float32",
    )
    assert all(p.dtype == np.float32 for p in model.params.values())
    model.fit(X, y)
    pred = model.predict(X)
    assert pred.dtype == np.float32
    assert np.all(np.isfinite(pred))


def test_float32_initial_weights_round_from_float64():
    m64 = DRNNRegressor(input_dim=4, hidden_sizes=(6,), seed=3)
    m32 = DRNNRegressor(input_dim=4, hidden_sizes=(6,), seed=3, dtype="float32")
    for key in m64.params:
        np.testing.assert_array_equal(
            m64.params[key].astype(np.float32), m32.params[key]
        )


@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_save_load_round_trips_dtype(tmp_path, dtype):
    X, y = _data()
    model = DRNNRegressor(
        input_dim=4, hidden_sizes=(5, 3), epochs=2, patience=0,
        seed=1, dtype=dtype,
    )
    model.fit(X, y)
    path = tmp_path / "model.npz"
    model.save(path)
    loaded = DRNNRegressor.load(path)
    assert loaded.dtype == np.dtype(dtype)
    assert loaded.hidden_sizes == (5, 3)
    np.testing.assert_array_equal(model.predict(X), loaded.predict(X))


def test_float32_minibatch_tracks_float64_within_tolerance():
    # The float32 mini-batch/accumulation path starts from the same
    # rounded weights as float64 (see above) and must stay within single
    # precision round-off of the float64 reference over a short training
    # run — the pinned tolerance for the fast path used by the
    # ``drnn_minibatch`` benchmark.
    X, y = _data(n=32)
    preds = {}
    for dtype in ("float64", "float32"):
        model = DRNNRegressor(
            input_dim=4, hidden_sizes=(6,), epochs=3, patience=0,
            seed=5, batch_size=8, accum_steps=2, dtype=dtype,
        )
        model.fit(X, y)
        preds[dtype] = model.predict(X).astype(np.float64)
    scale = float(np.std(y))
    assert np.max(np.abs(preds["float32"] - preds["float64"])) < 1e-3 * scale


def test_buffer_reuse_does_not_leak_state_between_batches():
    # forward/backward scratch buffers are cached per (kind, n, T): runs
    # with different shapes interleaved must not contaminate each other.
    X1, y1 = _data(n=16, T=5, d=4, seed=0)
    X2, _ = _data(n=7, T=9, d=4, seed=1)
    model = DRNNRegressor(
        input_dim=4, hidden_sizes=(6,), epochs=2, patience=0, seed=0
    )
    model.fit(X1, y1)
    first = model.predict(X1)
    model.predict(X2)  # different (n, T): new buffer set
    again = model.predict(X1)  # back to the first buffer set
    np.testing.assert_array_equal(first, again)
