"""Regression tests for the planner's crash-zeroing and floor guarantees.

Two bugs pinned here:

* the planner used to give tasks on *crashed* workers the ``min_ratio``
  probe floor — every tuple routed there during the crash window was
  purged by the dead worker's queue and had to replay (pure loss);
* the smoothing blend damped ratios *after* the floor was applied, so a
  floored entry could be dragged back below ``min_ratio`` and a
  throttled worker's probe trickle silently vanished.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ControllerConfig
from repro.core.planner import SplitRatioPlanner, floor_and_normalise

TASKS = [10, 11, 12, 13]
TASK_WORKER = {10: 0, 11: 1, 12: 2, 13: 3}


def make_planner(min_ratio=0.05, smoothing=0.7):
    return SplitRatioPlanner(
        ControllerConfig(min_ratio=min_ratio, smoothing=smoothing)
    )


class TestCrashedZeroing:
    def test_crashed_workers_get_exactly_zero(self):
        planner = make_planner()
        ratios = planner.plan(
            TASKS,
            TASK_WORKER,
            {0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0},
            flagged=set(),
            crashed={1, 3},
        )
        assert ratios[1] == 0.0
        assert ratios[3] == 0.0
        assert ratios.sum() == pytest.approx(1.0)
        assert all(r >= 0.05 for i, r in enumerate(ratios) if i in (0, 2))

    def test_crashed_stays_zero_through_smoothing(self):
        # prev ratios had mass on the (now crashed) worker; the damped
        # blend re-leaks some of it — the second projection must strip it.
        planner = make_planner()
        prev = np.array([0.25, 0.25, 0.25, 0.25])
        ratios = planner.plan(
            TASKS,
            TASK_WORKER,
            {0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0},
            flagged=set(),
            prev_ratios=prev,
            crashed={2},
        )
        assert ratios[2] == 0.0
        assert ratios.sum() == pytest.approx(1.0)

    def test_crashed_and_flagged_are_distinct(self):
        # flagged → penalised but floored; crashed → zero.
        planner = make_planner()
        ratios = planner.plan(
            TASKS,
            TASK_WORKER,
            {0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0},
            flagged={1},
            crashed={3},
        )
        assert ratios[3] == 0.0
        assert ratios[1] >= 0.05  # flagged keeps the probe trickle

    def test_all_crashed_falls_back_to_uniform(self):
        planner = make_planner()
        ratios = planner.plan(
            TASKS,
            TASK_WORKER,
            {w: 1.0 for w in range(4)},
            flagged=set(),
            crashed={0, 1, 2, 3},
        )
        np.testing.assert_allclose(ratios, 0.25)


class TestFloorAfterSmoothing:
    def test_blend_cannot_undercut_floor(self):
        # A task the target floors at min_ratio, with prev ≈ 0 there:
        # the blend alone would give smoothing * floor < floor.
        planner = make_planner(min_ratio=0.1, smoothing=0.5)
        prev = np.array([0.0, 0.5, 0.5, 0.0])
        ratios = planner.plan(
            TASKS,
            TASK_WORKER,
            {0: 50.0, 1: 1.0, 2: 1.0, 3: 50.0},  # 0 and 3 very unhealthy
            flagged={0, 3},
            prev_ratios=prev,
        )
        assert ratios.sum() == pytest.approx(1.0)
        assert all(r >= 0.1 - 1e-12 for r in ratios)

    @settings(max_examples=200, deadline=None)
    @given(
        scores=st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=8
        ),
        prev_raw=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=8
        ),
        crashed_mask=st.lists(st.booleans(), min_size=2, max_size=8),
        min_ratio=st.floats(min_value=0.0, max_value=0.12),
        smoothing=st.floats(min_value=0.05, max_value=1.0),
    )
    def test_final_ratios_always_respect_floor(
        self, scores, prev_raw, crashed_mask, min_ratio, smoothing
    ):
        n = min(len(scores), len(prev_raw), len(crashed_mask))
        scores, prev_raw = scores[:n], prev_raw[:n]
        crashed_mask = crashed_mask[:n]
        tasks = list(range(n))
        task_worker = {t: t for t in tasks}
        health = {t: max(scores[t], 1e-3) for t in tasks}
        crashed = {t for t in tasks if crashed_mask[t]}
        prev = np.asarray(prev_raw, dtype=float)
        prev = prev / prev.sum() if prev.sum() > 0 else np.full(n, 1.0 / n)
        planner = make_planner(min_ratio=min_ratio, smoothing=smoothing)
        ratios = planner.plan(
            tasks, task_worker, health, flagged=set(),
            prev_ratios=prev, crashed=crashed,
        )
        assert ratios.sum() == pytest.approx(1.0)
        live = [t for t in tasks if t not in crashed]
        feasible = min_ratio * len(live) < 1.0
        if crashed != set(tasks):
            for t in tasks:
                if t in crashed:
                    assert ratios[t] == 0.0
                elif feasible:
                    assert ratios[t] >= min_ratio - 1e-12


class TestCrashWindowTupleLoss:
    """End-to-end count of tuples lost into a dead worker.

    With the old floor-for-everyone planner, every controlled edge kept
    routing a ``min_ratio`` trickle into the crashed worker for the whole
    crash window; the transport dropped each one (``lost_count``) and the
    spout replayed it on timeout — pure waste. Now the first control
    action after the crash zeroes the dead worker's tasks, so the loss
    counter freezes for the rest of the window.
    """

    def test_no_tuples_lost_after_controller_zeroes_dead_worker(self):
        from repro.core import PerformancePredictor, PredictiveController
        from repro.storm import (
            NodeSpec,
            SimulationBuilder,
            TopologyBuilder,
            TopologyConfig,
            WorkerCrashFault,
        )
        from tests.storm.helpers import CounterSpout, PassBolt, SinkBolt

        b = TopologyBuilder()
        b.set_spout("src", CounterSpout(rate=150.0), parallelism=1)
        b.set_bolt("mid", PassBolt(), parallelism=4).dynamic_grouping("src")
        b.set_bolt("sink", SinkBolt(), parallelism=2).dynamic_grouping("mid")
        topology = b.build(
            "crash-window",
            TopologyConfig(num_workers=3, message_timeout=5.0, max_replays=8),
        )
        sim = (
            SimulationBuilder(topology)
            .nodes([NodeSpec(f"n{i}", cores=4, slots=2) for i in range(3)])
            .seed(11)
            .controller(
                PredictiveController(
                    PerformancePredictor(None, window=3),
                    ControllerConfig(control_interval=2.0, window=3),
                )
            )
            .faults(
                # crash *between* control ticks: tuples keep flowing into
                # the dead worker until the next action zeroes its tasks
                [WorkerCrashFault(start=10.5, duration=25.0, worker_id=1)]
            )
            .build()
        )
        # run past the first post-crash control action (crash at 10.5,
        # actions on the 2s grid) plus a little in-transit slack
        sim.run(13.0)
        controller = sim.controller
        action = next(
            a for a in controller.actions if 1 in a.crashed
        )
        for ratios in action.ratios.values():
            assert ratios.sum() == pytest.approx(1.0)
        lost_before = sim.cluster.transport.lost_count
        assert lost_before > 0  # the pre-reaction window did lose tuples
        # the rest of the crash window: the planner routes nothing there
        sim.run(33.0)
        assert sim.cluster.transport.lost_count == lost_before


class TestFloorProjection:
    def test_exact_floor_not_approximate(self):
        # One tiny score among giants: a one-shot maximum+renormalise
        # leaves it *below* the floor after rescaling; the iterative
        # projection pins it exactly at the floor.
        target = np.array([100.0, 100.0, 1e-6])
        out = floor_and_normalise(target, 0.05, np.zeros(3, dtype=bool))
        assert out[2] == pytest.approx(0.05)
        assert out.sum() == pytest.approx(1.0)

    def test_healthy_path_is_plain_normalisation(self):
        # No entry below floor: result must be bitwise-identical to t/sum
        # (the pre-elasticity behaviour, pinned by the chaos golden).
        target = np.array([1.0, 2.0, 3.0])
        out = floor_and_normalise(target, 0.02, np.zeros(3, dtype=bool))
        expected = target / target.sum()
        assert (out == expected).all()

    def test_infeasible_floor_falls_back_to_proportions(self):
        target = np.array([3.0, 1.0])
        out = floor_and_normalise(target, 0.6, np.zeros(2, dtype=bool))
        np.testing.assert_allclose(out, [0.75, 0.25])

    def test_dead_mass_never_leaks(self):
        target = np.array([0.5, 0.5, 0.5, 0.5])
        dead = np.array([False, True, False, True])
        out = floor_and_normalise(target, 0.1, dead)
        assert out[1] == 0.0 and out[3] == 0.0
        assert out.sum() == pytest.approx(1.0)
