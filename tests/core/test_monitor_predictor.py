"""Tests for the stats monitor and the model-agnostic predictor."""

import numpy as np
import pytest

from repro.apps import RateProfile, build_url_count_topology
from repro.core import PerformancePredictor, StatsMonitor
from repro.core.monitor import INTERFERENCE_FEATURES, OWN_FEATURES, TOPOLOGY_FEATURES
from repro.models import DRNNRegressor, SVRegressor
from repro.storm import StormSimulation


@pytest.fixture(scope="module")
def sim_with_history():
    topo = build_url_count_topology(profile=RateProfile(base=150))
    sim = StormSimulation(topo, seed=5, metrics_interval=1.0)
    sim.run(duration=40)
    return sim


def test_feature_names_with_and_without_interference(sim_with_history):
    m_full = StatsMonitor(sim_with_history.cluster, include_interference=True)
    m_abl = StatsMonitor(sim_with_history.cluster, include_interference=False)
    assert m_full.feature_names == OWN_FEATURES + INTERFERENCE_FEATURES + TOPOLOGY_FEATURES
    assert m_abl.feature_names == OWN_FEATURES + TOPOLOGY_FEATURES
    assert len(m_full.feature_names) > len(m_abl.feature_names)


def test_observe_builds_aligned_histories(sim_with_history):
    sim = sim_with_history
    monitor = StatsMonitor(sim.cluster)
    monitor.observe_all(sim.metrics.snapshots)
    assert monitor.n_intervals == len(sim.metrics.snapshots)
    for wid in monitor.worker_ids:
        F = monitor.feature_matrix(wid)
        t = monitor.target_series(wid)
        assert F.shape == (monitor.n_intervals, len(monitor.feature_names))
        assert t.shape == (monitor.n_intervals,)
        assert np.all(np.isfinite(F))
        assert np.all(t >= 0)


def test_interference_columns_are_populated(sim_with_history):
    # Workers share nodes in the default cluster, so co-located CPU share
    # must be non-zero somewhere.
    monitor = StatsMonitor(sim_with_history.cluster)
    monitor.observe_all(sim_with_history.metrics.snapshots)
    col = monitor.feature_names.index("colocated_cpu_share")
    total = sum(
        monitor.feature_matrix(w)[:, col].sum() for w in monitor.worker_ids
    )
    assert total > 0


def test_target_carries_forward_on_idle_interval(sim_with_history):
    monitor = StatsMonitor(sim_with_history.cluster)
    snaps = sim_with_history.metrics.snapshots
    monitor.observe(snaps[0])
    wid = monitor.worker_ids[0]
    before = monitor.target_series(wid)[-1]
    # Forge an idle snapshot: zero executed everywhere.
    import copy

    idle = copy.deepcopy(snaps[1])
    for ws in idle.workers.values():
        ws.executed = 0
        ws.avg_process_latency = 0.0
    monitor.observe(idle)
    after = monitor.target_series(wid)
    assert after[-1] == before  # carried forward, not zeroed


def test_latest_window_requires_enough_history(sim_with_history):
    monitor = StatsMonitor(sim_with_history.cluster)
    snaps = sim_with_history.metrics.snapshots
    monitor.observe_all(snaps[:3])
    wid = monitor.worker_ids[0]
    assert monitor.latest_window(wid, window=5) is None
    w = monitor.latest_window(wid, window=3)
    assert w is not None and w.shape == (3, len(monitor.feature_names))


def test_pooled_training_data_shapes(sim_with_history):
    monitor = StatsMonitor(sim_with_history.cluster)
    monitor.observe_all(sim_with_history.metrics.snapshots)
    X, y = monitor.pooled_training_data(window=6)
    n_workers = len(monitor.worker_ids)
    per_worker = monitor.n_intervals - 6
    assert X.shape == (n_workers * per_worker, 6, len(monitor.feature_names))
    assert y.shape == (n_workers * per_worker,)


def test_pooled_training_data_too_short_raises(sim_with_history):
    monitor = StatsMonitor(sim_with_history.cluster)
    monitor.observe_all(sim_with_history.metrics.snapshots[:3])
    with pytest.raises(ValueError, match="history"):
        monitor.pooled_training_data(window=10)


# --- predictor -----------------------------------------------------------------------


def test_reactive_predictor_echoes_last_target(sim_with_history):
    monitor = StatsMonitor(sim_with_history.cluster)
    monitor.observe_all(sim_with_history.metrics.snapshots)
    pred = PerformancePredictor(None, window=4)
    assert pred.fitted
    out = pred.predict_workers(monitor)
    for wid, value in out.items():
        expect = monitor.target_series(wid)[-1]
        assert value == pytest.approx(max(expect, 0.0))
    with pytest.raises(RuntimeError, match="reactive"):
        pred.predict_batch(np.zeros((1, 4, len(monitor.feature_names))))


def test_monitor_target_feature_selectable(sim_with_history):
    snaps = sim_with_history.metrics.snapshots
    m_svc = StatsMonitor(sim_with_history.cluster, target_feature="avg_service_time")
    m_lat = StatsMonitor(
        sim_with_history.cluster, target_feature="avg_process_latency"
    )
    m_svc.observe_all(snaps)
    m_lat.observe_all(snaps)
    wid = m_svc.worker_ids[0]
    # Process latency includes queue wait: it dominates service time.
    assert np.mean(m_lat.target_series(wid)) >= np.mean(m_svc.target_series(wid))
    with pytest.raises(ValueError):
        StatsMonitor(sim_with_history.cluster, target_feature="bogus")


def test_drnn_predictor_end_to_end(sim_with_history):
    monitor = StatsMonitor(sim_with_history.cluster)
    monitor.observe_all(sim_with_history.metrics.snapshots)
    model = DRNNRegressor(
        input_dim=len(monitor.feature_names),
        hidden_sizes=(12,),
        epochs=15,
        seed=0,
    )
    pred = PerformancePredictor(model, window=6).fit_from_monitor(monitor)
    out = pred.predict_workers(monitor)
    assert set(out) == set(monitor.worker_ids)
    assert all(np.isfinite(v) and v >= 0 for v in out.values())
    # Sanity: predictions live at the scale of observed latencies.
    observed = [monitor.target_series(w)[-1] for w in monitor.worker_ids]
    assert np.mean(list(out.values())) < 10 * (np.mean(observed) + 1e-3)


def test_svr_predictor_end_to_end(sim_with_history):
    monitor = StatsMonitor(sim_with_history.cluster)
    monitor.observe_all(sim_with_history.metrics.snapshots)
    model = SVRegressor(kernel="rbf", C=10.0, epsilon=0.05)
    pred = PerformancePredictor(model, window=4).fit_from_monitor(monitor)
    out = pred.predict_workers(monitor)
    assert len(out) == len(monitor.worker_ids)


def test_unfitted_predictor_raises(sim_with_history):
    monitor = StatsMonitor(sim_with_history.cluster)
    monitor.observe_all(sim_with_history.metrics.snapshots)
    pred = PerformancePredictor(SVRegressor(), window=4)
    with pytest.raises(RuntimeError):
        pred.predict_workers(monitor)


def test_predictor_window_validation():
    with pytest.raises(ValueError):
        PerformancePredictor(None, window=0)
