"""Control-loop integration on the Continuous Queries application.

The controller must work identically on the paper's second app (its
actuated edge is filter -> query instead of parse -> count).
"""

import numpy as np

from repro.apps import RateProfile, build_continuous_query_topology
from repro.core import ControllerConfig, PerformancePredictor, PredictiveController
from repro.storm import SlowdownFault, StormSimulation


def test_cq_controller_detects_and_sheds():
    topo = build_continuous_query_topology(profile=RateProfile(base=150))
    fault = SlowdownFault(start=40, duration=80, worker_id=2, factor=15)
    sim = StormSimulation(topo, seed=9, faults=[fault])
    ctrl = PredictiveController(
        sim,
        PerformancePredictor(None, window=4),
        ControllerConfig(control_interval=5.0, window=4),
    )
    res = sim.run(duration=120)
    flagged = {w for _t, w, kind in ctrl.flag_intervals() if kind == "flag"}
    assert flagged == {2}
    # The actuated edge is the CQ one.
    assert list(ctrl.actions[-1].ratios) == [("filter", "query", "default")]
    # Query tasks on the misbehaving worker are starved.
    last = ctrl.actions[-1].ratios[("filter", "query", "default")]
    q_tasks = sim.topology.task_ids["query"]
    for i, t in enumerate(q_tasks):
        if sim.cluster.worker_of_task(t).worker_id == 2:
            assert last[i] < 1.0 / len(q_tasks)
    # And the query answers keep flowing despite the fault.
    results = next(
        ex for ex in sim.cluster.executors.values() if ex.component_id == "results"
    ).bolt
    assert results.current  # non-empty: partials kept arriving
