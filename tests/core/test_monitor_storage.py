"""Regression and property tests for the array-backed StatsMonitor.

Covers the PR-3 hot-path rewrite: the preallocated time-major storage must
be observationally identical to a naive list-of-rows implementation across
growth boundaries, leading idle intervals must be excluded from training
data, and the control-loop readers must use cached column indices.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.hotpaths import make_monitor_fixture
from repro.core import PerformancePredictor, StatsMonitor
from repro.core.monitor import _INITIAL_CAPACITY
from repro.models import DRNNRegressor
from repro.models.preprocessing import StandardScaler, make_supervised_windows


def naive_histories(
    cluster, snapshots, include_interference=True, target_feature="avg_service_time"
):
    """Reference implementation: plain per-worker lists of rows.

    Mirrors the documented semantics (sorted-worker iteration, per-node
    totals accumulated in that order, ``total - own`` co-location values,
    carry-forward targets, leading-idle padding with 0.0).
    """
    worker_ids = sorted(w.worker_id for w in cluster.workers)
    node_of = {w.worker_id: w.node.name for w in cluster.workers}
    rows = {wid: [] for wid in worker_ids}
    targets = {wid: [] for wid in worker_ids}
    last = {wid: 0.0 for wid in worker_ids}
    first_real = {wid: None for wid in worker_ids}
    for k, snap in enumerate(snapshots):
        node_tot = {}
        for wid in worker_ids:
            ws = snap.workers[wid]
            tot = node_tot.setdefault(node_of[wid], [0.0, 0, 0])
            tot[0] += ws.cpu_share
            tot[1] += ws.executed
            tot[2] += ws.backlog
        for wid in worker_ids:
            ws = snap.workers[wid]
            row = [
                ws.executed,
                ws.emitted,
                ws.avg_process_latency,
                ws.avg_service_time,
                ws.queue_len,
                ws.backlog,
                ws.cpu_share,
            ]
            if include_interference:
                tot = node_tot[node_of[wid]]
                row += [
                    snap.nodes[node_of[wid]].utilization,
                    tot[0] - ws.cpu_share,
                    tot[1] - ws.executed,
                    tot[2] - ws.backlog,
                ]
            row += [snap.topology.emit_rate, float(snap.topology.in_flight)]
            rows[wid].append(row)
            if ws.executed > 0:
                targets[wid].append(getattr(ws, target_feature))
                if first_real[wid] is None:
                    first_real[wid] = k
            else:
                targets[wid].append(last[wid])
            last[wid] = targets[wid][-1]
    return rows, targets, first_real


@settings(max_examples=15, deadline=None)
@given(
    n_workers=st.integers(1, 6),
    n_intervals=st.integers(1, 2 * _INITIAL_CAPACITY + 9),
    seed=st.integers(0, 10),
    interference=st.booleans(),
)
def test_monitor_matches_naive_reference(n_workers, n_intervals, seed, interference):
    cluster, snapshots = make_monitor_fixture(n_workers, n_intervals, seed=seed)
    monitor = StatsMonitor(cluster, include_interference=interference)
    monitor.observe_all(snapshots)
    rows, targets, first_real = naive_histories(
        cluster, snapshots, include_interference=interference
    )
    assert monitor.n_intervals == n_intervals
    for wid in monitor.worker_ids:
        ref_F = np.asarray(rows[wid], dtype=float)
        ref_t = np.asarray(targets[wid], dtype=float)
        assert np.array_equal(monitor.feature_matrix(wid), ref_F)
        assert np.array_equal(monitor.target_series(wid), ref_t)
        assert monitor.first_real_interval(wid) == first_real[wid]
        w = min(5, n_intervals)
        window = monitor.latest_window(wid, w)
        assert window is not None
        assert np.array_equal(window, ref_F[n_intervals - w :])
    backlog_col = monitor.feature_names.index("backlog")
    assert monitor.latest_backlogs() == {
        wid: rows[wid][-1][backlog_col] for wid in monitor.worker_ids
    }
    assert monitor.latest_latencies() == {
        wid: targets[wid][-1] for wid in monitor.worker_ids
    }


@settings(max_examples=10, deadline=None)
@given(
    n_workers=st.integers(1, 4),
    n_intervals=st.integers(12, _INITIAL_CAPACITY + 40),
    seed=st.integers(0, 5),
)
def test_pooled_training_data_matches_naive_reference(n_workers, n_intervals, seed):
    window, horizon = 3, 1
    cluster, snapshots = make_monitor_fixture(n_workers, n_intervals, seed=seed)
    monitor = StatsMonitor(cluster)
    monitor.observe_all(snapshots)
    rows, targets, first_real = naive_histories(cluster, snapshots)
    xs, ys = [], []
    for wid in monitor.worker_ids:
        start = first_real[wid]
        if start is None:
            continue
        F = np.asarray(rows[wid][start:], dtype=float)
        t = np.asarray(targets[wid][start:], dtype=float)
        if F.shape[0] < window + horizon:
            continue
        X, y = make_supervised_windows(F, t, window=window, horizon=horizon)
        xs.append(X)
        ys.append(y)
    if not xs:
        with pytest.raises(ValueError):
            monitor.pooled_training_data(window=window, horizon=horizon)
        return
    X, y = monitor.pooled_training_data(window=window, horizon=horizon)
    assert np.array_equal(X, np.concatenate(xs, axis=0))
    assert np.array_equal(y, np.concatenate(ys, axis=0))


def _silence_worker(snapshots, wid, upto):
    """Zero out a worker's activity in the first ``upto`` snapshots."""
    for snap in snapshots[:upto]:
        ws = snap.workers[wid]
        ws.executed = 0
        ws.avg_service_time = 0.0
        ws.avg_process_latency = 0.0


def test_leading_idle_intervals_excluded_from_training():
    # Regression: a worker idle for its first k intervals used to
    # contribute supervised windows whose targets were the 0.0 padding,
    # teaching the model a fictitious zero-latency regime.
    cluster, snapshots = make_monitor_fixture(2, 30, seed=3)
    for snap in snapshots:  # ensure both workers are otherwise active
        for ws in snap.workers.values():
            ws.executed = max(ws.executed, 1)
            ws.avg_service_time = max(ws.avg_service_time, 1e-4)
    _silence_worker(snapshots, wid=0, upto=7)
    monitor = StatsMonitor(cluster)
    monitor.observe_all(snapshots)
    assert monitor.first_real_interval(0) == 7
    assert monitor.first_real_interval(1) == 0
    # The reported series still cover every interval (alignment holds) …
    assert np.all(monitor.target_series(0)[:7] == 0.0)
    assert monitor.target_series(0).shape == (30,)
    # … but the padded prefix never becomes training rows.
    window, horizon = 4, 1
    X, y = monitor.pooled_training_data(window=window, horizon=horizon)
    expected = (30 - 7 - window) + (30 - window)  # worker 0 + worker 1
    assert X.shape[0] == expected
    assert np.all(y > 0.0)


def test_never_executed_worker_contributes_no_training_rows():
    cluster, snapshots = make_monitor_fixture(2, 20, seed=1)
    for snap in snapshots:
        snap.workers[1].executed = max(snap.workers[1].executed, 1)
        snap.workers[1].avg_service_time = max(
            snap.workers[1].avg_service_time, 1e-4
        )
    _silence_worker(snapshots, wid=0, upto=len(snapshots))
    monitor = StatsMonitor(cluster)
    monitor.observe_all(snapshots)
    assert monitor.first_real_interval(0) is None
    X, y = monitor.pooled_training_data(window=4)
    assert X.shape[0] == 20 - 4  # worker 1 only
    assert np.all(y > 0.0)


def test_latest_backlogs_uses_cached_column_indices():
    # Regression: latest_backlogs() used to call
    # feature_names.index("backlog") once per worker per control tick.
    for interference in (True, False):
        cluster, snapshots = make_monitor_fixture(4, 10, seed=2)
        monitor = StatsMonitor(cluster, include_interference=interference)
        assert monitor._backlog_col == monitor.feature_names.index("backlog")
        assert monitor._col == {
            name: i for i, name in enumerate(monitor.feature_names)
        }
        monitor.observe_all(snapshots)
        expect = {
            wid: float(snapshots[-1].workers[wid].backlog)
            for wid in monitor.worker_ids
        }
        assert monitor.latest_backlogs() == expect


def test_extraction_views_are_readonly():
    cluster, snapshots = make_monitor_fixture(2, 8, seed=0)
    monitor = StatsMonitor(cluster)
    monitor.observe_all(snapshots)
    wid = monitor.worker_ids[0]
    for arr in (
        monitor.feature_matrix(wid),
        monitor.target_series(wid),
        monitor.latest_window(wid, 4),
    ):
        with pytest.raises(ValueError):
            arr[..., 0] = 1.0


def test_scaler_fit_excludes_validation_tail():
    # Regression: PerformancePredictor.fit used to fit its scalers on all
    # rows, leaking the model's chronological validation tail into the
    # normalisation statistics.
    rng = np.random.default_rng(0)
    n, T, d = 40, 4, 3
    X = rng.normal(size=(n, T, d))
    y = rng.normal(size=n)
    X[-10:] += 100.0  # make any leakage glaring
    y[-10:] += 100.0
    model = DRNNRegressor(
        input_dim=d, hidden_sizes=(4,), epochs=1,
        patience=2, val_fraction=0.25, seed=0,
    )
    pred = PerformancePredictor(model, window=T)
    assert pred._holdout_size(n) == 10
    pred.fit(X, y)
    n_train = n - 10
    ref_x = StandardScaler().fit(X[:n_train].reshape(n_train * T, d))
    ref_y = StandardScaler().fit(y[:n_train])
    np.testing.assert_array_equal(pred.scaler_x.mean_, ref_x.mean_)
    np.testing.assert_array_equal(pred.scaler_x.std_, ref_x.std_)
    np.testing.assert_array_equal(pred.scaler_y.mean_, ref_y.mean_)
    leaky = StandardScaler().fit(X.reshape(n * T, d))
    assert not np.allclose(pred.scaler_x.mean_, leaky.mean_)


def test_holdout_size_mirrors_drnn_split():
    model = DRNNRegressor(input_dim=2, patience=3, val_fraction=0.2)
    pred = PerformancePredictor(model, window=2)
    for n in (3, 5, 10, 50):
        n_val = max(1, int(n * model.val_fraction))
        if n - n_val < 2:
            n_val = 0
        assert pred._holdout_size(n) == n_val
    model_no_es = DRNNRegressor(input_dim=2, patience=0)
    assert PerformancePredictor(model_no_es, window=2)._holdout_size(50) == 0


def test_predictor_round_trip_on_array_storage():
    cluster, snapshots = make_monitor_fixture(4, 60, seed=4)
    monitor = StatsMonitor(cluster)
    monitor.observe_all(snapshots)
    model = DRNNRegressor(
        input_dim=len(monitor.feature_names),
        hidden_sizes=(8,), epochs=3, patience=0, seed=0,
    )
    pred = PerformancePredictor(model, window=5).fit_from_monitor(monitor)
    out = pred.predict_workers(monitor)
    assert set(out) == set(monitor.worker_ids)
    assert all(np.isfinite(v) and v >= 0.0 for v in out.values())
