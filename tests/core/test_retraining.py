"""Tests for online predictor retraining inside the simulation."""

import numpy as np
import pytest

from repro.apps import RateProfile, build_url_count_topology
from repro.core import (
    ControllerConfig,
    OnlineModelFactory,
    PredictiveController,
    RetrainingPredictor,
)
from repro.storm import SimulationBuilder


def _factory():
    return OnlineModelFactory(hidden=(6,), epochs=8, seed=0)


def _build_sim(seed=3, window=4, retrain_interval=20.0, max_history=None):
    topo = build_url_count_topology(profile=RateProfile(base=150))
    predictor = RetrainingPredictor(
        _factory(),
        window=window,
        retrain_interval=retrain_interval,
        max_history=max_history,
    )
    ctrl = PredictiveController(
        predictor, ControllerConfig(control_interval=5.0, window=window)
    )
    sim = SimulationBuilder(topo).seed(seed).controller(ctrl).build()
    return sim, predictor, ctrl


# --- construction -----------------------------------------------------------------


def test_validation():
    with pytest.raises(ValueError, match="retrain_interval"):
        RetrainingPredictor(_factory(), retrain_interval=0.0)
    with pytest.raises(ValueError, match="max_history"):
        RetrainingPredictor(_factory(), window=8, max_history=8)


def test_starts_unfitted_despite_model_none():
    # model=None normally means the reactive (last-observation) ablation,
    # which reports fitted from birth; the retraining predictor overrides
    # that — it must not act before its first successful refit.
    pred = RetrainingPredictor(_factory(), window=4)
    assert pred.model is None
    assert not pred.fitted
    assert pred.min_intervals == 8  # defaults to 2 * window
    assert pred.n_retrains == 0


def test_factory_is_picklable_and_builds_fresh_models():
    import pickle

    factory = pickle.loads(pickle.dumps(_factory()))
    m1, m2 = factory(5), factory(5)
    assert m1 is not m2
    assert m1.hidden_sizes == (6,)
    for k in m1.params:  # same seed -> identical fresh weights
        np.testing.assert_array_equal(m1.params[k], m2.params[k])


# --- in-sim behaviour --------------------------------------------------------------


def test_periodic_refit_inside_simulation():
    sim, predictor, ctrl = _build_sim(max_history=24)
    sim.run(duration=90.0)
    # Refit attempts at t=20,40,60,80; the first may be skipped while the
    # monitor warms up, the later ones must have trained.
    assert len(predictor.retrain_log) == 4
    assert [e.time for e in predictor.retrain_log] == [20.0, 40.0, 60.0, 80.0]
    assert predictor.n_retrains >= 3
    assert predictor.fitted
    assert predictor.retrain_log[-1].trained
    # The rolling window caps training-set growth: with max_history=24
    # intervals per worker, row counts stop growing once history exceeds it.
    trained = [e for e in predictor.retrain_log if e.trained]
    rows = [e.n_rows for e in trained]
    assert rows[-1] == rows[-2]  # saturated at the cap
    # The controller actually used the refit model.
    assert any(a.predictions for a in ctrl.actions)


def test_refit_skipped_during_warmup():
    sim, predictor, _ = _build_sim(retrain_interval=5.0)
    sim.run(duration=8.0)
    # At t=5 the monitor (one interval per metrics second) holds ~5
    # intervals, below min_intervals=8: the attempt must be a skip.
    assert [e.trained for e in predictor.retrain_log] == [False]
    assert not predictor.fitted


def test_in_sim_retraining_is_deterministic():
    summaries = []
    logs = []
    for _ in range(2):
        sim, predictor, _ = _build_sim()
        result = sim.run(duration=60.0)
        summaries.append(repr(result.summary()))
        logs.append(predictor.retrain_log)
    assert summaries[0] == summaries[1]
    assert logs[0] == logs[1]  # RetrainEvents are frozen dataclasses
