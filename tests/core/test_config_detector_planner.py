"""Unit tests for controller config, detector, and planner."""

import numpy as np
import pytest

from repro.core import ControllerConfig, MisbehaviorDetector, SplitRatioPlanner


def cfg(**kw):
    return ControllerConfig(**kw)


# --- config -----------------------------------------------------------------


def test_config_defaults_valid():
    cfg().validate()


@pytest.mark.parametrize(
    "kw",
    [
        {"control_interval": 0},
        {"window": 0},
        {"threshold_factor": 1.0},
        {"smoothing": 0.0},
        {"smoothing": 1.5},
        {"min_ratio": 0.5},
        {"hysteresis_up": 0},
        {"hysteresis_down": 0},
        {"misbehaving_penalty": 0.0},
    ],
)
def test_config_rejects_bad_values(kw):
    with pytest.raises(ValueError):
        cfg(**kw).validate()


# --- detector ----------------------------------------------------------------

HEALTHY = {0: 0.01, 1: 0.012, 2: 0.011, 3: 0.0095}


def warmed_detector(**kw):
    det = MisbehaviorDetector(cfg(**kw))
    for _ in range(5):
        det.update(dict(HEALTHY), dict(HEALTHY), {w: 0 for w in HEALTHY})
    return det


def test_no_flags_when_healthy():
    det = warmed_detector()
    assert det.flagged == set()
    assert all(abs(r - 1.0) < 0.2 for r in det.ratios.values())


def test_flags_single_slow_worker():
    det = warmed_detector(hysteresis_up=1)
    pred = dict(HEALTHY)
    pred[2] = 0.12  # 10x its baseline
    flagged = det.update(pred, dict(HEALTHY), {w: 0 for w in HEALTHY}, now=7.0)
    assert flagged == {2}
    assert det.log[-1] == (7.0, 2, "flag")


def test_hysteresis_up_delays_flagging():
    det = warmed_detector(hysteresis_up=3)
    pred = dict(HEALTHY)
    pred[1] = 0.2
    assert det.update(pred, dict(HEALTHY), {}) == set()
    assert det.update(pred, dict(HEALTHY), {}) == set()
    assert det.update(pred, dict(HEALTHY), {}) == {1}


def test_hysteresis_down_delays_clearing():
    det = warmed_detector(hysteresis_up=1, hysteresis_down=2)
    bad = dict(HEALTHY)
    bad[0] = 0.3
    det.update(bad, dict(HEALTHY), {})
    assert det.flagged == {0}
    det.update(dict(HEALTHY), dict(HEALTHY), {})
    assert det.flagged == {0}  # one clean interval is not enough
    det.update(dict(HEALTHY), dict(HEALTHY), {})
    assert det.flagged == set()


def test_global_slowdown_flags_nobody():
    # Offered load doubles -> everyone slows together: median-relative
    # normalisation must keep all workers unflagged.
    det = warmed_detector(hysteresis_up=1)
    surged = {w: v * 4 for w, v in HEALTHY.items()}
    for _ in range(4):
        flagged = det.update(surged, surged, {w: 0 for w in HEALTHY})
    assert flagged == set()


def test_heterogeneous_workers_not_flagged():
    # Worker 9 is structurally 10x slower (heavier bolts) but steady:
    # self-baselining must treat it as nominal.
    det = MisbehaviorDetector(cfg(hysteresis_up=1))
    lat = {0: 0.01, 1: 0.011, 9: 0.1}
    for _ in range(6):
        flagged = det.update(dict(lat), dict(lat), {w: 0 for w in lat})
    assert flagged == set()


def test_backlog_guard_catches_paused_worker():
    # A paused worker's latency stats go silent, but its backlog explodes.
    det = warmed_detector(hysteresis_up=1)
    backlogs = {0: 0, 1: 0, 2: 0, 3: 900}
    flagged = det.update(dict(HEALTHY), dict(HEALTHY), backlogs)
    assert 3 in flagged


def test_backlog_floor_suppresses_noise():
    det = warmed_detector(hysteresis_up=1)
    flagged = det.update(dict(HEALTHY), dict(HEALTHY), {0: 0, 1: 0, 2: 0, 3: 30})
    assert flagged == set()  # 30 < backlog_floor


def test_baseline_frozen_while_flagged():
    det = warmed_detector(hysteresis_up=1)
    base_before = det.baseline_of(2)
    bad = dict(HEALTHY)
    bad[2] = 0.5
    for _ in range(10):
        det.update(bad, bad, {})
    assert 2 in det.flagged
    # Despite 10 intervals of 0.5s observations, the baseline must not
    # have absorbed the fault.
    assert det.baseline_of(2) == pytest.approx(base_before, rel=1e-6)


def test_schmitt_trigger_prevents_flapping():
    det = warmed_detector(hysteresis_up=1, hysteresis_down=1)
    bad = dict(HEALTHY)
    bad[2] = 0.2
    det.update(bad, dict(HEALTHY), {})
    assert 2 in det.flagged
    # Ratio drops to ~1.6x the entry threshold's half: still suspect for a
    # flagged worker, so no clear.
    medium = dict(HEALTHY)
    medium[2] = HEALTHY[2] * 1.8
    det.update(medium, dict(HEALTHY), {})
    assert 2 in det.flagged
    # Fully recovered: clears.
    det.update(dict(HEALTHY), dict(HEALTHY), {})
    assert 2 not in det.flagged


def test_reset_clears_state():
    det = warmed_detector(hysteresis_up=1)
    bad = dict(HEALTHY)
    bad[0] = 1.0
    det.update(bad, dict(HEALTHY), {})
    det.reset()
    assert det.flagged == set()
    assert det.baseline_of(0) == 0.0


# --- planner ---------------------------------------------------------------------


TASKS = [10, 11, 12, 13]
TASK_WORKER = {10: 0, 11: 1, 12: 2, 13: 3}


def planner(**kw):
    return SplitRatioPlanner(cfg(**kw))


def test_uniform_health_uniform_ratios():
    p = planner(smoothing=1.0)
    ratios = p.plan(TASKS, TASK_WORKER, {w: 1.0 for w in range(4)}, set())
    assert np.allclose(ratios, 0.25)


def test_slow_worker_gets_less():
    p = planner(smoothing=1.0)
    health = {0: 1.0, 1: 1.0, 2: 4.0, 3: 1.0}
    ratios = p.plan(TASKS, TASK_WORKER, health, set())
    assert ratios[2] < 0.1
    assert ratios[2] == pytest.approx(ratios[0] / 4, rel=0.05)
    assert np.isclose(ratios.sum(), 1.0)


def test_flagged_worker_penalised_beyond_score():
    p = planner(smoothing=1.0, min_ratio=0.02, misbehaving_penalty=0.05)
    health = {0: 1.0, 1: 1.0, 2: 2.0, 3: 1.0}
    free = p.plan(TASKS, TASK_WORKER, health, set())
    flagged = p.plan(TASKS, TASK_WORKER, health, {2})
    assert flagged[2] < free[2]


def test_min_ratio_floor_keeps_probe_traffic():
    p = planner(smoothing=1.0, min_ratio=0.05)
    health = {0: 1.0, 1: 1.0, 2: 100.0, 3: 1.0}
    ratios = p.plan(TASKS, TASK_WORKER, health, {2})
    assert ratios[2] >= 0.04  # floor (≈ min_ratio after renormalisation)


def test_smoothing_damps_changes():
    p = planner(smoothing=0.5)
    prev = np.array([0.25, 0.25, 0.25, 0.25])
    health = {0: 1.0, 1: 1.0, 2: 10.0, 3: 1.0}
    step1 = p.plan(TASKS, TASK_WORKER, health, set(), prev_ratios=prev)
    jump = planner(smoothing=1.0).plan(TASKS, TASK_WORKER, health, set())
    # Damped step lies strictly between previous and target.
    assert jump[2] < step1[2] < prev[2]


def test_unknown_workers_treated_nominal():
    p = planner(smoothing=1.0)
    ratios = p.plan(TASKS, TASK_WORKER, {}, set())
    assert np.allclose(ratios, 0.25)


def test_prev_ratio_shape_validated():
    p = planner()
    with pytest.raises(ValueError):
        p.plan(TASKS, TASK_WORKER, {}, set(), prev_ratios=np.array([0.5, 0.5]))


def test_empty_tasks_rejected():
    with pytest.raises(ValueError):
        planner().plan([], {}, {}, set())


def test_ratios_always_normalised_and_nonnegative():
    rng = np.random.default_rng(0)
    p = planner(smoothing=0.7)
    prev = None
    for _ in range(50):
        health = {w: float(rng.uniform(0.2, 20)) for w in range(4)}
        flagged = set(rng.choice(4, size=rng.integers(0, 3), replace=False))
        ratios = p.plan(TASKS, TASK_WORKER, health, flagged, prev_ratios=prev)
        assert np.isclose(ratios.sum(), 1.0)
        assert np.all(ratios >= 0)
        prev = ratios
