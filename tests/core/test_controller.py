"""Integration tests of the full predictive control loop."""

import numpy as np
import pytest

from repro.apps import RateProfile, build_url_count_topology
from repro.core import ControllerConfig, PerformancePredictor, PredictiveController
from repro.storm import SlowdownFault, StormSimulation
from repro.storm.topology import TopologyConfig


def make_sim(faults=(), seed=3, rate=200):
    topo = build_url_count_topology(profile=RateProfile(base=rate))
    return StormSimulation(topo, seed=seed, faults=list(faults))


def reactive(sim, **cfg_kw):
    cfg = ControllerConfig(control_interval=5.0, window=4, **cfg_kw)
    return PredictiveController(sim, PerformancePredictor(None, window=4), cfg)


def test_requires_dynamic_edge():
    topo = build_url_count_topology(grouping="shuffle")
    sim = StormSimulation(topo, seed=0)
    with pytest.raises(ValueError, match="dynamic"):
        reactive(sim)


def test_unknown_edge_rejected():
    sim = make_sim()
    with pytest.raises(KeyError):
        PredictiveController(
            sim,
            PerformancePredictor(None, window=4),
            ControllerConfig(window=4),
            edges=[("ghost", "count", "default")],
        )


def test_no_false_flags_on_healthy_run():
    sim = make_sim()
    ctrl = reactive(sim)
    sim.run(duration=90)
    assert ctrl.detector.flagged == set()
    assert ctrl.flag_intervals() == []


def test_healthy_ratios_stay_near_uniform():
    sim = make_sim()
    ctrl = reactive(sim)
    sim.run(duration=90)
    last = ctrl.actions[-1].ratios[("parse", "count", "default")]
    assert np.allclose(last, 1.0 / len(last), atol=0.08)


def test_detects_misbehaving_worker_and_sheds_load():
    fault = SlowdownFault(start=40, duration=80, worker_id=2, factor=15)
    sim = make_sim(faults=[fault])
    ctrl = reactive(sim)
    sim.run(duration=100)
    events = ctrl.flag_intervals()
    flags = [(t, w) for t, w, kind in events if kind == "flag"]
    assert any(w == 2 and t >= 40 for t, w in flags)
    # No healthy worker was ever flagged.
    assert {w for _t, w, _k in events} == {2}
    # Load on the faulty worker's count tasks is squeezed down.
    last = ctrl.actions[-1].ratios[("parse", "count", "default")]
    count_tasks = sim.topology.task_ids["count"]
    faulty_tasks = [
        i
        for i, t in enumerate(count_tasks)
        if sim.cluster.worker_of_task(t).worker_id == 2
    ]
    assert faulty_tasks  # placement puts at least one count task there
    for i in faulty_tasks:
        assert last[i] < 0.5 / len(count_tasks)


def test_recovery_restores_flags_and_ratios():
    fault = SlowdownFault(start=30, duration=40, worker_id=2, factor=15)
    sim = make_sim(faults=[fault])
    ctrl = reactive(sim)
    sim.run(duration=180)
    assert ctrl.detector.flagged == set()  # cleared after recovery
    kinds = [k for _t, _w, k in ctrl.flag_intervals()]
    assert "flag" in kinds and "clear" in kinds
    last = ctrl.actions[-1].ratios[("parse", "count", "default")]
    assert np.allclose(last, 1.0 / len(last), atol=0.1)


def test_actions_logged_each_interval():
    sim = make_sim()
    ctrl = reactive(sim)
    sim.run(duration=60)
    # First window intervals produce no action; afterwards one per tick.
    assert 8 <= len(ctrl.actions) <= 12
    for a in ctrl.actions:
        assert set(a.ratios) == {("parse", "count", "default")}


def test_prediction_trace_extraction():
    sim = make_sim()
    ctrl = reactive(sim)
    sim.run(duration=60)
    t, p = ctrl.prediction_trace(worker_id=0)
    assert t.shape == p.shape
    assert len(t) > 0
    assert np.all(np.diff(t) > 0)


def test_online_fit_trains_mid_run():
    from repro.models import SVRegressor

    sim = make_sim()
    pred = PerformancePredictor(SVRegressor(C=5.0), window=4)
    ctrl = PredictiveController(
        sim,
        pred,
        ControllerConfig(control_interval=5.0, window=4),
        online_fit_after=8,
    )
    assert not pred.fitted
    sim.run(duration=90)
    assert pred.fitted
    assert len(ctrl.actions) > 0


def test_control_survives_paused_worker():
    # A paused worker produces no latency samples; the backlog guard must
    # still flag it and the loop must keep running.
    from repro.storm import PauseFault

    fault = PauseFault(start=40, duration=40, worker_id=1)
    sim = make_sim(faults=[fault])
    ctrl = reactive(sim)
    sim.run(duration=100)
    flagged_workers = {w for _t, w, k in ctrl.flag_intervals() if k == "flag"}
    assert 1 in flagged_workers
