"""Tests for AnyOf/AllOf conditions, Resource, and RNG registry."""

import numpy as np
import pytest

from repro.des import AllOf, AnyOf, Environment, Resource, RngRegistry, spawn_rngs


# --- conditions ---------------------------------------------------------------


def test_anyof_fires_on_first():
    env = Environment()
    winner = []

    def proc(env):
        t1 = env.timeout(5, value="slow")
        t2 = env.timeout(2, value="fast")
        result = yield AnyOf(env, [t1, t2])
        winner.append((env.now, list(result.values())))

    env.process(proc(env))
    env.run()
    assert winner == [(2.0, ["fast"])]


def test_allof_waits_for_all():
    env = Environment()
    done = []

    def proc(env):
        t1 = env.timeout(5, value="a")
        t2 = env.timeout(2, value="b")
        result = yield AllOf(env, [t1, t2])
        done.append((env.now, sorted(result.values())))

    env.process(proc(env))
    env.run()
    assert done == [(5.0, ["a", "b"])]


def test_condition_operators():
    env = Environment()
    log = []

    def proc(env):
        r = yield env.timeout(1, "x") | env.timeout(9, "y")
        log.append(("or", env.now, sorted(r.values())))
        r = yield env.timeout(1, "p") & env.timeout(2, "q")
        log.append(("and", env.now, sorted(r.values())))

    env.process(proc(env))
    env.run()
    assert log[0] == ("or", 1.0, ["x"])
    assert log[1] == ("and", 3.0, ["p", "q"])


def test_allof_with_already_processed_events():
    env = Environment()
    results = []

    def proc(env, pre):
        yield env.timeout(3)
        r = yield AllOf(env, [pre, env.timeout(1, "late")])
        results.append((env.now, sorted(r.values())))

    pre = env.event()
    pre.succeed("early")
    env.process(proc(env, pre))
    env.run()
    assert results == [(4.0, ["early", "late"])]


def test_anyof_empty_fires_immediately():
    env = Environment()
    fired = []

    def proc(env):
        r = yield AnyOf(env, [])
        fired.append((env.now, r))

    env.process(proc(env))
    env.run()
    assert fired == [(0.0, {})]


def test_condition_propagates_failure():
    env = Environment()
    caught = []

    def proc(env, bad):
        try:
            yield AnyOf(env, [bad, env.timeout(10)])
        except ValueError as e:
            caught.append(str(e))

    bad = env.event()
    env.process(proc(env, bad))
    bad.fail(ValueError("inner"))
    env.run()
    assert caught == ["inner"]


def test_condition_rejects_foreign_events():
    env1, env2 = Environment(), Environment()
    with pytest.raises(ValueError):
        AllOf(env1, [env1.event(), env2.event()])


# --- resource -------------------------------------------------------------------


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    active = []
    peak = []

    def user(env, hold):
        req = res.request()
        yield req
        active.append(1)
        peak.append(len(active))
        yield env.timeout(hold)
        active.pop()
        res.release(req)

    for _ in range(5):
        env.process(user(env, 3))
    env.run()
    assert max(peak) == 2


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, tag):
        with res.request() as req:
            yield req
            order.append(tag)
            yield env.timeout(1)

    for tag in ("a", "b", "c"):
        env.process(user(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_resource_context_manager_releases():
    env = Environment()
    res = Resource(env, capacity=1)

    def user(env):
        with res.request() as req:
            yield req
            yield env.timeout(1)

    env.process(user(env))
    env.run()
    assert res.count == 0


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_queue_len():
    env = Environment()
    res = Resource(env, capacity=1)
    observed = []

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(5)

    def waiter(env):
        with res.request() as req:
            yield req

    def observer(env):
        yield env.timeout(1)
        observed.append(res.queue_len)

    env.process(holder(env))
    env.process(waiter(env))
    env.process(observer(env))
    env.run()
    assert observed == [1]


# --- rng ---------------------------------------------------------------------------


def test_spawn_rngs_independent_and_deterministic():
    a1, b1 = spawn_rngs(7, 2)
    a2, b2 = spawn_rngs(7, 2)
    assert np.allclose(a1.random(10), a2.random(10))
    assert np.allclose(b1.random(10), b2.random(10))
    assert not np.allclose(a1.random(10), b1.random(10))


def test_rng_registry_stable_by_name():
    r1 = RngRegistry(seed=13)
    r2 = RngRegistry(seed=13)
    # Request streams in different orders: same-name streams must agree.
    x1 = r1.get("spout").random(5)
    _ = r2.get("bolt").random(5)
    x2 = r2.get("spout").random(5)
    assert np.allclose(x1, x2)


def test_rng_registry_distinct_names_distinct_streams():
    reg = RngRegistry(seed=13)
    a = reg.get("alpha").random(100)
    b = reg.get("beta").random(100)
    assert not np.allclose(a, b)


def test_rng_registry_same_name_same_object():
    reg = RngRegistry(seed=1)
    assert reg.get("x") is reg.get("x")
    assert "x" in reg


def test_rng_registry_seed_changes_streams():
    a = RngRegistry(seed=1).get("s").random(20)
    b = RngRegistry(seed=2).get("s").random(20)
    assert not np.allclose(a, b)
