"""The pluggable EventQueue API: protocol, registry, and scheduler parity.

The load-bearing property here is pop-order equivalence: the calendar
queue must release entries in exactly the heap's ``(time, priority,
seq)`` order on *any* interleaving of pushes and pops — including exact
ties, backwards keys (PriorityStore rewinds), and the resize/rewind
paths — because the whole scheduler API is sold as a pure performance
knob with byte-identical results.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment
from repro.des.queues import (
    QUEUE_KINDS,
    CalendarQueue,
    EventQueue,
    HeapQueue,
    WheelQueue,
    make_queue,
)

#: every non-heap implementation must match the heap's pop order exactly
ALT_KINDS = sorted(k for k in QUEUE_KINDS if k != "heap")

# Keys mix continuous values, a coarse grid (frequent exact ties), and
# negative values (PriorityStore pushes arbitrary priorities).
_KEYS = st.one_of(
    st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
    st.integers(min_value=-5, max_value=5).map(lambda k: 10.0 * k),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)

# A program is a list of steps: (True, key, prio) pushes, False pops.
_STEPS = st.lists(
    st.one_of(
        st.tuples(st.just(True), _KEYS, st.sampled_from([0, 1, 1, 1, 2])),
        st.just(False),
    ),
    max_size=300,
)


@pytest.mark.parametrize("kind", ALT_KINDS)
@settings(max_examples=120, deadline=None)
@given(steps=_STEPS)
def test_alt_queues_match_heap_on_arbitrary_interleavings(kind, steps):
    heap, cal = HeapQueue(), make_queue(kind)
    seq = 0
    for step in steps:
        if step is False:
            if not heap:
                continue
            assert cal.pop() == heap.pop()
        else:
            _, key, prio = step
            seq += 1
            entry = (key, prio, seq, None)
            heap.push(entry)
            cal.push(entry)
        assert len(cal) == len(heap)
        assert cal.peek() == heap.peek()
    while heap:
        assert cal.pop() == heap.pop()
    assert not cal


@pytest.mark.parametrize("kind", ALT_KINDS)
@settings(max_examples=60, deadline=None)
@given(
    keys=st.lists(_KEYS, max_size=200),
    churn=st.integers(min_value=0, max_value=100),
)
def test_bulk_load_matches_incremental_and_heap(kind, keys, churn):
    entries = [(key, 1, seq, None) for seq, key in enumerate(keys)]
    heap = HeapQueue(entries)
    cal = QUEUE_KINDS[kind](entries)
    seq = len(entries)
    # Hold cycles exercise the steady-state push/pop mix on the loaded ring.
    for _ in range(min(churn, len(entries))):
        popped = heap.pop()
        assert cal.pop() == popped
        seq += 1
        entry = (popped[0] + 1.0, 1, seq, None)
        heap.push(entry)
        cal.push(entry)
    while heap:
        assert cal.pop() == heap.pop()
    assert not cal


def test_resize_grows_and_shrinks_through_geometry():
    cal = CalendarQueue()
    start = cal._geometry()["buckets"]
    entries = [(float(i % 97) * 3.0, 1, i, None) for i in range(5000)]
    for entry in entries:
        cal.push(entry)
    grown = cal._geometry()["buckets"]
    assert grown > start
    order = [cal.pop() for _ in range(len(entries))]
    assert order == sorted(entries)
    assert cal._geometry()["buckets"] < grown  # drain shrank the ring


@pytest.mark.parametrize("kind", sorted(QUEUE_KINDS))
def test_empty_queue_contract(kind):
    queue = make_queue(kind)
    assert len(queue) == 0
    assert not queue
    assert queue.peek() == float("inf")
    with pytest.raises(IndexError):
        queue.pop()
    assert queue.kind == kind
    assert isinstance(queue, EventQueue)


def test_make_queue_default_and_passthrough():
    assert isinstance(make_queue(), HeapQueue)
    assert isinstance(make_queue(None), HeapQueue)
    prebuilt = CalendarQueue()
    assert make_queue(prebuilt) is prebuilt
    with pytest.raises(ValueError, match="unknown scheduler"):
        make_queue("fibonacci")
    with pytest.raises(TypeError):
        make_queue(42)


def test_calendar_constructor_validation():
    with pytest.raises(ValueError, match="width"):
        CalendarQueue(width=0.0)
    with pytest.raises(ValueError, match="power of two"):
        CalendarQueue(buckets=12)


def test_wheel_constructor_validation():
    with pytest.raises(ValueError, match="width"):
        WheelQueue(width=0.0)
    with pytest.raises(ValueError, match="power of two"):
        WheelQueue(slots=100)


def test_wheel_overflow_and_rebase():
    # Entries beyond the wheel's horizon go to the overflow heap and are
    # drained back into buckets once the in-window entries are consumed.
    wheel = WheelQueue(width=1.0, slots=4)  # horizon: 4 days
    near = [(float(i), 1, i + 1, None) for i in range(4)]
    far = [(100.0 + i, 1, 10 + i, None) for i in range(3)]
    for entry in near + far:
        wheel.push(entry)
    geo = wheel._geometry()
    assert geo["overflow"] == 3 and geo["wheel_size"] == 4
    assert [wheel.pop() for _ in range(7)] == sorted(near + far)
    assert not wheel


def test_wheel_rebuilds_on_push_below_base():
    # PriorityStore pushes arbitrary (even negative) keys: a push below
    # the anchored window must rebuild, not lose order.
    wheel = WheelQueue(width=1.0, slots=4)
    wheel.push((10.0, 1, 1, None))
    wheel.push((-5.0, 1, 2, None))
    wheel.push((3.0, 1, 3, None))
    assert wheel.peek() == -5.0
    assert [wheel.pop()[0] for _ in range(3)] == [-5.0, 3.0, 10.0]


def test_environment_exposes_scheduler_and_new_queue():
    env = Environment(queue="calendar")
    assert env.scheduler == "calendar"
    assert isinstance(env.new_queue(), CalendarQueue)
    default = Environment()
    assert default.scheduler == "heap"
    assert isinstance(default.new_queue(), HeapQueue)
    injected = Environment(queue=HeapQueue())
    assert injected.scheduler == "heap"
