"""Tests for the DES kernel's Timeout slot-reuse free list.

The run loop recycles a just-processed Timeout only when its refcount
proves nothing else holds it; `Environment.timeout` then reinitialises the
object in place.  These tests pin the safety properties: held references
are never recycled, recycled objects are indistinguishable from fresh
ones, and the pool stays bounded.
"""

import pytest

from repro.des import Environment


def test_unreferenced_timeouts_are_recycled():
    env = Environment()

    def ticker():
        for _ in range(10):
            yield env.timeout(1.0)

    env.process(ticker())
    assert env._timeout_pool == []
    env.run()
    assert len(env._timeout_pool) >= 1


def test_held_timeout_is_never_recycled():
    env = Environment()
    held = []

    def proc():
        t = env.timeout(1.0, value="x")
        held.append(t)
        yield t
        yield env.timeout(1.0)

    env.process(proc())
    env.run()
    t = held[0]
    assert all(p is not t for p in env._timeout_pool)
    assert t.value == "x"  # outcome intact after the run
    assert t.processed


def test_recycled_timeouts_pass_values_and_fire_on_time():
    env = Environment()
    log = []

    def proc():
        for i in range(6):
            v = yield env.timeout(0.5, value=i)
            log.append((env.now, v))

    env.process(proc())
    env.run()
    assert log == [(0.5 * (i + 1), i) for i in range(6)]


def test_pooled_timeout_rejects_negative_delay():
    env = Environment()

    def ticker():
        for _ in range(3):
            yield env.timeout(1.0)

    env.process(ticker())
    env.run()
    assert env._timeout_pool  # reinit path is the one under test
    with pytest.raises(ValueError, match="negative delay"):
        env.timeout(-0.1)


def test_pool_stays_bounded():
    env = Environment()

    def ticker():
        for _ in range(500):
            yield env.timeout(0.001)

    for i in range(4):
        env.process(ticker())
    env.run()
    assert len(env._timeout_pool) <= 128
