"""Tests for Store / PriorityStore: FIFO, capacity, blocking, cancel."""

import pytest

from repro.des import Environment, Interrupt, PriorityItem, PriorityStore, Store


def test_put_then_get_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for i in range(3):
            yield store.put(i)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == [0, 1, 2]


def test_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    times = []

    def consumer(env):
        item = yield store.get()
        times.append((env.now, item))

    def producer(env):
        yield env.timeout(5)
        yield store.put("x")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert times == [(5.0, "x")]


def test_put_blocks_when_full():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer(env):
        yield store.put("a")
        log.append(("a-in", env.now))
        yield store.put("b")
        log.append(("b-in", env.now))

    def consumer(env):
        yield env.timeout(10)
        item = yield store.get()
        log.append(("got", item, env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert log == [("a-in", 0.0), ("got", "a", 10.0), ("b-in", 10.0)]


def test_capacity_must_be_positive():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_level_and_is_full():
    env = Environment()
    store = Store(env, capacity=2)

    def proc(env):
        assert store.level == 0
        yield store.put(1)
        assert store.level == 1
        assert not store.is_full
        yield store.put(2)
        assert store.is_full

    env.process(proc(env))
    env.run()


def test_try_put_drops_when_full():
    env = Environment()
    store = Store(env, capacity=1)

    def proc(env):
        assert store.try_put("a") is True
        yield env.timeout(0)
        assert store.try_put("b") is False
        assert store.level == 1

    env.process(proc(env))
    env.run()


def test_try_put_succeeds_with_waiting_getter():
    # Even when "full by capacity", a waiting getter means the item has a
    # home — try_put must hand it over rather than drop it.
    env = Environment()
    store = Store(env, capacity=1)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append(item)
        item = yield store.get()
        got.append(item)

    def producer(env):
        yield env.timeout(1)
        assert store.try_put("a")
        assert store.try_put("b")  # "a" was immediately consumed

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == ["a", "b"]


def test_cancelled_get_does_not_steal_item():
    env = Environment()
    store = Store(env)
    got = []

    def impatient(env):
        try:
            yield store.get()
        except Interrupt:
            pass
        yield env.timeout(100)

    def patient(env):
        item = yield store.get()
        got.append(item)

    def driver(env, victim):
        yield env.timeout(1)
        victim.interrupt()
        yield store.put("only")

    victim = env.process(impatient(env))
    env.process(patient(env))
    env.process(driver(env, victim))
    env.run()
    assert got == ["only"]


def test_cancelled_put_frees_slot():
    env = Environment()
    store = Store(env, capacity=1)
    stored = []

    def blocked_putter(env):
        yield store.put("first")
        try:
            yield store.put("second")  # blocks: capacity 1
        except Interrupt:
            pass

    def other_putter(env):
        yield env.timeout(2)
        yield store.get()  # frees the slot
        yield store.put("third")
        stored.append(list(store.items))

    def driver(env, victim):
        yield env.timeout(1)
        victim.interrupt()

    victim = env.process(blocked_putter(env))
    env.process(other_putter(env))
    env.process(driver(env, victim))
    env.run()
    # "second" was cancelled, so after get+put the store holds only "third".
    assert stored == [["third"]]


def test_priority_store_orders_by_priority():
    env = Environment()
    store = PriorityStore(env)
    got = []

    def producer(env):
        yield store.put(PriorityItem(priority=5, item="low"))
        yield store.put(PriorityItem(priority=1, item="high"))
        yield store.put(PriorityItem(priority=3, item="mid"))

    def consumer(env):
        yield env.timeout(1)
        for _ in range(3):
            it = yield store.get()
            got.append(it.item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == ["high", "mid", "low"]


def test_priority_store_fifo_within_priority():
    env = Environment()
    store = PriorityStore(env)
    got = []

    def producer(env):
        for tag in ("a", "b", "c"):
            yield store.put(PriorityItem(priority=1, item=tag))

    def consumer(env):
        yield env.timeout(1)
        for _ in range(3):
            it = yield store.get()
            got.append(it.item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == ["a", "b", "c"]


def test_many_producers_consumers_conservation():
    # No item is lost or duplicated under heavy interleaving.
    env = Environment()
    store = Store(env, capacity=4)
    produced, consumed = [], []

    def producer(env, base):
        for i in range(50):
            item = base + i
            produced.append(item)
            yield store.put(item)
            yield env.timeout(0.1)

    def consumer(env):
        while len(consumed) < 150:
            item = yield store.get()
            consumed.append(item)
            yield env.timeout(0.13)

    for k in range(3):
        env.process(producer(env, 1000 * k))
    env.process(consumer(env))
    env.run()
    assert sorted(consumed) == sorted(produced)
    assert len(consumed) == 150
