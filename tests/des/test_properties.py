"""Property-based tests (hypothesis) for DES kernel invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment, Store


@settings(max_examples=40, deadline=None)
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30
    )
)
def test_timeouts_resume_in_time_order(delays):
    env = Environment()
    fired = []

    def waiter(env, d):
        yield env.timeout(d)
        fired.append(d)

    for d in delays:
        env.process(waiter(env, d))
    env.run()
    assert fired == sorted(fired) or np.allclose(fired, sorted(fired))
    assert len(fired) == len(delays)


@settings(max_examples=40, deadline=None)
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=50.0), min_size=2, max_size=20
    )
)
def test_equal_time_events_fire_in_creation_order(delays):
    # Force ties: round delays to integers so collisions are common.
    env = Environment()
    fired = []

    def waiter(env, i, d):
        yield env.timeout(float(int(d)))
        fired.append((int(d), i))

    for i, d in enumerate(delays):
        env.process(waiter(env, i, d))
    env.run()
    assert fired == sorted(fired)  # time-major, creation-order within ties


@settings(max_examples=30, deadline=None)
@given(
    n_items=st.integers(min_value=1, max_value=60),
    capacity=st.integers(min_value=1, max_value=8),
    n_consumers=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_store_conserves_items_under_random_interleaving(
    n_items, capacity, n_consumers, seed
):
    rng = np.random.default_rng(seed)
    env = Environment()
    store = Store(env, capacity=capacity)
    produced = list(range(n_items))
    consumed = []

    def producer(env):
        for item in produced:
            yield env.timeout(float(rng.random()))
            yield store.put(item)

    def consumer(env):
        while len(consumed) < n_items:
            item = yield store.get()
            consumed.append(item)
            yield env.timeout(float(rng.random()))

    env.process(producer(env))
    for _ in range(n_consumers):
        env.process(consumer(env))
    env.run(until=10_000)
    assert sorted(consumed) == produced  # nothing lost, nothing duplicated


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(st.sampled_from(["put", "get"]), min_size=1, max_size=60),
)
def test_store_level_never_exceeds_capacity(ops):
    env = Environment()
    store = Store(env, capacity=3)
    violations = []

    def driver(env):
        for op in ops:
            if op == "put":
                store.put(object())
            else:
                store.get()
            if store.level > store.capacity:
                violations.append(store.level)
            yield env.timeout(0.1)

    env.process(driver(env))
    env.run()
    assert violations == []


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_simulation_bit_reproducible(seed):
    def run_once():
        env = Environment()
        log = []
        rng = np.random.default_rng(seed)

        def proc(env, tag):
            while env.now < 20:
                yield env.timeout(float(rng.exponential(1.0)))
                log.append((tag, env.now))

        env.process(proc(env, "a"))
        env.process(proc(env, "b"))
        env.run(until=25)
        return log

    assert run_once() == run_once()
