"""Property tests for the child-stream spawner (``repro.des.rng``).

The parallel experiment engine's determinism contract rests on these
invariants: a run's stream depends only on ``(root_seed, run_index,
lanes)`` — never on which process draws it or in what order — so the
pinned values here are a wire format and must not change across
releases (cached results and golden campaign outputs encode them).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import child_sequence, derive_seed, spawn_stream

SEEDS = st.integers(min_value=0, max_value=2**31 - 1)
LANES = st.lists(st.integers(min_value=0, max_value=2**16), max_size=3)


def test_pinned_derived_seeds():
    # Frozen wire format: these exact values are baked into the golden
    # chaos campaign (tests/golden/chaos_smoke.json) and every cache key.
    assert derive_seed(7, 0) == 2083679832
    assert derive_seed(7, 1) == 369571992
    assert derive_seed(0, 0) == 2968811710


@settings(max_examples=50, deadline=None)
@given(root=SEEDS, run=st.integers(min_value=0, max_value=10_000), lanes=LANES)
def test_spawn_stream_is_stable(root, run, lanes):
    a = spawn_stream(root, run, *lanes).integers(0, 2**32, size=8)
    b = spawn_stream(root, run, *lanes).integers(0, 2**32, size=8)
    assert np.array_equal(a, b)
    assert derive_seed(root, run, *lanes) == derive_seed(root, run, *lanes)


@settings(max_examples=50, deadline=None)
@given(root=SEEDS, run=st.integers(min_value=0, max_value=1_000))
def test_sibling_streams_are_independent(root, run):
    """Adjacent run indices must not produce correlated draws."""
    a = spawn_stream(root, run).random(size=64)
    b = spawn_stream(root, run + 1).random(size=64)
    assert not np.array_equal(a, b)
    # crude but effective: correlation of independent U(0,1) draws is ~0
    assert abs(np.corrcoef(a, b)[0, 1]) < 0.75


@settings(max_examples=50, deadline=None)
@given(root=SEEDS, run=st.integers(min_value=0, max_value=1_000), lanes=LANES)
def test_lanes_partition_the_stream_space(root, run, lanes):
    """A lane suffix yields a distinct stream from the bare (root, run)."""
    seq = child_sequence(root, run, *lanes)
    assert isinstance(seq, np.random.SeedSequence)
    if lanes:
        bare = derive_seed(root, run)
        laned = derive_seed(root, run, *lanes)
        # Laned entropy is length-prefixed ([root, run, len, *lanes])
        # because SeedSequence ignores trailing zero words; without the
        # prefix a 0-valued lane aliases the bare stream and silently
        # reuses one run's faults as another's schedule stream.
        assert bare != laned or lanes == []


@settings(max_examples=30, deadline=None)
@given(root=SEEDS, runs=st.integers(min_value=2, max_value=32))
def test_derived_seeds_unique_within_campaign(root, runs):
    seeds = [derive_seed(root, i) for i in range(runs)]
    assert len(set(seeds)) == runs


def test_derive_seed_range_and_types():
    s = derive_seed(123, 4, 5)
    assert isinstance(s, int)
    assert 0 <= s < 2**32
    # numpy integer inputs must behave like Python ints
    assert derive_seed(np.int64(123), np.int64(4), np.int64(5)) == s


def test_negative_entropy_rejected():
    with pytest.raises(ValueError):
        derive_seed(-1, 0)
