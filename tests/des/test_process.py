"""Tests for processes: lifecycle, return values, interrupts, waiting."""

import pytest

from repro.des import Environment, Interrupt


def test_process_return_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return 99

    p = env.process(proc(env))
    assert env.run(until=p) == 99


def test_process_is_alive_transitions():
    env = Environment()

    def proc(env):
        yield env.timeout(5)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_processes_can_wait_on_each_other():
    env = Environment()
    log = []

    def child(env):
        yield env.timeout(3)
        log.append(("child-done", env.now))
        return "payload"

    def parent(env):
        result = yield env.process(child(env))
        log.append(("parent-got", env.now, result))

    env.process(parent(env))
    env.run()
    assert log == [("child-done", 3.0), ("parent-got", 3.0, "payload")]


def test_process_crash_propagates_to_run():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        raise RuntimeError("crash")

    env.process(proc(env))
    with pytest.raises(RuntimeError, match="crash"):
        env.run()


def test_process_crash_catchable_by_waiter():
    env = Environment()
    seen = []

    def bad(env):
        yield env.timeout(1)
        raise RuntimeError("crash")

    def waiter(env):
        try:
            yield env.process(bad(env))
        except RuntimeError as e:
            seen.append(str(e))

    env.process(waiter(env))
    env.run()
    assert seen == ["crash"]


def test_interrupt_delivers_cause():
    env = Environment()
    causes = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt as i:
            causes.append((i.cause, env.now))

    def interrupter(env, victim):
        yield env.timeout(2)
        victim.interrupt("wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    # Delivered at t=2; the orphaned timeout still drains at t=100.
    assert causes == [("wake up", 2.0)]
    assert env.now == 100.0


def test_interrupt_detaches_from_old_target():
    # After an interrupt, the original timeout firing must NOT resume the
    # process a second time.
    env = Environment()
    resumed = []

    def sleeper(env):
        try:
            yield env.timeout(10)
        except Interrupt:
            pass
        yield env.timeout(100)  # new wait; old timeout at t=10 must not wake us
        resumed.append(env.now)

    def interrupter(env, victim):
        yield env.timeout(1)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert resumed == [101.0]


def test_interrupt_dead_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(0)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_self_interrupt_rejected():
    env = Environment()
    errors = []

    def proc(env):
        me = env.active_process
        try:
            me.interrupt()
        except RuntimeError as e:
            errors.append(str(e))
        yield env.timeout(0)

    env.process(proc(env))
    env.run()
    assert len(errors) == 1


def test_yield_non_event_raises():
    env = Environment()

    def proc(env):
        yield 42  # type: ignore[misc]

    env.process(proc(env))
    with pytest.raises(RuntimeError, match="non-event"):
        env.run()


def test_yield_already_processed_event_continues_immediately():
    env = Environment()
    log = []

    def proc(env, done_ev):
        yield env.timeout(2)
        # done_ev fired at t=1 and was processed; yielding it must resume
        # without advancing the clock.
        val = yield done_ev
        log.append((env.now, val))

    ev = env.event()

    def setter(env):
        yield env.timeout(1)
        ev.succeed("early")

    env.process(setter(env))
    env.process(proc(env, ev))
    env.run()
    assert log == [(2.0, "early")]


def test_long_chain_of_processed_events_no_stack_overflow():
    # _resume iterates; a long chain of already-fired events must not recurse.
    env = Environment()
    events = []

    def setter(env):
        yield env.timeout(1)
        for ev in events:
            ev.succeed(None)

    def proc(env):
        yield env.timeout(2)
        for ev in events:
            yield ev
        return "ok"

    events.extend(env.event() for _ in range(5000))
    env.process(setter(env))
    p = env.process(proc(env))
    assert env.run(until=p) == "ok"


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_two_processes_interleave_deterministically():
    env = Environment()
    log = []

    def proc(env, tag, period):
        while env.now < 6:
            yield env.timeout(period)
            log.append((tag, env.now))

    env.process(proc(env, "fast", 1))
    env.process(proc(env, "slow", 2))
    env.run(until=7)
    fast = [t for tag, t in log if tag == "fast"]
    slow = [t for tag, t in log if tag == "slow"]
    assert fast == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
    assert slow == [2.0, 4.0, 6.0]
