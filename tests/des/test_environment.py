"""Tests for the DES environment: clock, ordering, run() semantics."""

import pytest

from repro.des import Environment, Event, StopSimulation


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_initial_time():
    env = Environment(initial_time=42.5)
    assert env.now == 42.5


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(3.0)
        assert env.now == 3.0
        yield env.timeout(2.0)
        assert env.now == 5.0

    env.process(proc(env))
    env.run()
    assert env.now == 5.0


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_run_until_number_stops_clock_exactly():
    env = Environment()

    def ticker(env):
        while True:
            yield env.timeout(1.0)

    env.process(ticker(env))
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_until_past_raises():
    env = Environment(initial_time=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_run_until_event_returns_value():
    env = Environment()

    def setter(env, ev):
        yield env.timeout(4.0)
        ev.succeed("done")

    ev = env.event()
    env.process(setter(env, ev))
    assert env.run(until=ev) == "done"
    assert env.now == 4.0


def test_run_until_event_never_fires_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(RuntimeError):
        env.run(until=ev)


def test_run_drains_queue_and_returns_none():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)

    env.process(proc(env))
    assert env.run() is None
    assert env.now == 1.0


def test_simultaneous_events_fire_in_fifo_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == 7.0


def test_peek_empty_queue_is_inf():
    env = Environment()
    assert env.peek() == float("inf")


def test_event_fail_uncaught_surfaces_at_run():
    env = Environment()
    ev = env.event()
    ev.fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_event_fail_caught_by_process_is_defused():
    env = Environment()
    caught = []

    def proc(env, ev):
        try:
            yield ev
        except ValueError as e:
            caught.append(str(e))

    ev = env.event()
    env.process(proc(env, ev))
    ev.fail(ValueError("boom"))
    env.run()
    assert caught == ["boom"]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(ValueError())


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(RuntimeError):
        _ = ev.value


def test_fail_requires_exception_instance():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")  # type: ignore[arg-type]


def test_schedule_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.schedule(env.event(), delay=-0.5)


def test_stop_simulation_value_passthrough():
    # run(until=Event) must return the event's value even when the event
    # fires exactly at the same instant as other events.
    env = Environment()
    ev = env.event()

    def proc(env):
        yield env.timeout(1.0)
        ev.succeed(123)

    env.process(proc(env))
    assert env.run(until=ev) == 123
