"""Tests for the ``python -m repro`` command-line interface."""

import numpy as np
import pytest

from repro.__main__ import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_app():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["trace", "--app", "bogus"])


def test_trace_command_prints_summary(capsys, tmp_path):
    out = tmp_path / "trace.npz"
    rc = main(
        [
            "trace",
            "--duration", "30",
            "--rate", "80",
            "--seed", "5",
            "--out", str(out),
        ]
    )
    assert rc == 0
    captured = capsys.readouterr().out
    assert "intervals : 30" in captured
    assert "workers" in captured
    data = np.load(out)
    assert any(k.startswith("target_w") for k in data.files)
    assert any(k.startswith("features_w") for k in data.files)


def test_reliability_command_baseline(capsys):
    rc = main(
        [
            "reliability",
            "--arm", "baseline",
            "--duration", "60",
            "--rate", "100",
            "--seed", "3",
        ]
    )
    assert rc == 0
    captured = capsys.readouterr().out
    assert "arm         : baseline" in captured
    assert "degradation" in captured


def test_demo_command_runs(capsys):
    rc = main(["demo", "--duration", "60", "--rate", "100", "--seed", "2"])
    assert rc == 0
    captured = capsys.readouterr().out
    assert "healthy throughput" in captured


@pytest.mark.parametrize("command", ["chaos", "predict", "bench"])
def test_negative_jobs_is_a_usage_error(command, capsys):
    """``--jobs -1`` must exit with argparse's usage error code (2)."""
    with pytest.raises(SystemExit) as exc_info:
        main([command, "--jobs", "-1"])
    assert exc_info.value.code == 2
    assert "jobs must be >= 0" in capsys.readouterr().err


def test_jobs_not_an_int_is_a_usage_error(capsys):
    with pytest.raises(SystemExit) as exc_info:
        main(["chaos", "--jobs", "many"])
    assert exc_info.value.code == 2


def test_predict_grid_command_writes_report(capsys, tmp_path):
    import json

    out = tmp_path / "grid.json"
    rc = main(
        [
            "predict",
            "--grid",
            "--models", "svr", "holt", "ensemble",
            "--profiles", "calm",
            "--duration", "100",
            "--rate", "150",
            "--seed", "1",
            "--window", "4",
            "--horizon", "2",
            "--out", str(out),
        ]
    )
    assert rc == 0
    captured = capsys.readouterr().out
    assert "model grid" in captured
    assert "url_count" in captured and "holt" in captured
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro-grid/1"
    assert doc["models"] == ["svr", "holt", "ensemble"]
    (cell,) = doc["cells"]
    assert set(cell["scores"]) == {"svr", "holt", "ensemble"}


def test_predict_grid_rejects_unknown_profile(capsys):
    with pytest.raises(ValueError, match="unknown fault profile"):
        main(["predict", "--grid", "--profiles", "bogus", "--duration", "60"])


def test_chaos_command_online_arm(capsys):
    rc = main(
        [
            "chaos",
            "--arm", "online",
            "--runs", "1",
            "--duration", "30",
            "--rate", "60",
            "--seed", "9",
            "--retrain-interval", "10",
            "--losses", "0",
        ]
    )
    assert rc == 0
    captured = capsys.readouterr().out
    assert "arm: online" in captured
    assert "tuple conservation holds" in captured


def test_chaos_command_with_jobs_and_cache(capsys, tmp_path):
    args = [
        "chaos",
        "--runs", "2",
        "--duration", "20",
        "--rate", "60",
        "--seed", "9",
        "--cache", str(tmp_path / "cache"),
        "--out", str(tmp_path / "report.json"),
    ]
    rc = main(args + ["--jobs", "1"])
    assert rc == 0
    first = (tmp_path / "report.json").read_bytes()
    assert "tuple conservation" in capsys.readouterr().out
    # warm rerun: same bytes, served from the cache
    rc = main(args)
    assert rc == 0
    assert (tmp_path / "report.json").read_bytes() == first
