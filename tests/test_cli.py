"""Tests for the ``python -m repro`` command-line interface."""

import numpy as np
import pytest

from repro.__main__ import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_app():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["trace", "--app", "bogus"])


def test_trace_command_prints_summary(capsys, tmp_path):
    out = tmp_path / "trace.npz"
    rc = main(
        [
            "trace",
            "--duration", "30",
            "--rate", "80",
            "--seed", "5",
            "--out", str(out),
        ]
    )
    assert rc == 0
    captured = capsys.readouterr().out
    assert "intervals : 30" in captured
    assert "workers" in captured
    data = np.load(out)
    assert any(k.startswith("target_w") for k in data.files)
    assert any(k.startswith("features_w") for k in data.files)


def test_reliability_command_baseline(capsys):
    rc = main(
        [
            "reliability",
            "--arm", "baseline",
            "--duration", "60",
            "--rate", "100",
            "--seed", "3",
        ]
    )
    assert rc == 0
    captured = capsys.readouterr().out
    assert "arm         : baseline" in captured
    assert "degradation" in captured


def test_demo_command_runs(capsys):
    rc = main(["demo", "--duration", "60", "--rate", "100", "--seed", "2"])
    assert rc == 0
    captured = capsys.readouterr().out
    assert "healthy throughput" in captured
