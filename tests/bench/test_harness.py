"""Smoke tests for the hot-path benchmark harness and its report schema."""

import json

import pytest

from repro.bench.harness import (
    LEGACY_SUFFIX,
    SCHEMA,
    SERIAL_SUFFIX,
    TWIN_SUFFIXES,
    main,
    run_benchmarks,
    time_benchmark,
    time_benchmark_pair,
    write_report,
)
from repro.bench.hotpaths import BENCHMARKS, SCALES

RESULT_KEYS = {"median_s", "repeats_s", "work_units", "units_per_s"}


def test_time_benchmark_protocol():
    calls = []

    def fn():
        calls.append(1)
        return 42

    res = time_benchmark(fn, warmup=2, repeats=3)
    assert len(calls) == 5  # warmup + repeats
    assert set(res) == RESULT_KEYS
    assert res["work_units"] == 42
    assert len(res["repeats_s"]) == 3
    assert res["median_s"] >= 0.0
    with pytest.raises(ValueError):
        time_benchmark(fn, repeats=0)


def test_time_benchmark_pair_interleaves_and_returns_min_ratio():
    order = []

    def work(tag, loops):
        order.append(tag)
        return sum(range(loops)) and 1

    res_a, res_b, ratio = time_benchmark_pair(
        lambda: work("a", 50_000),
        lambda: work("b", 100_000),
        warmup=1,
        repeats=3,
    )
    # warmup pair + 3 interleaved measured pairs, strictly alternating
    assert order == ["a", "b"] * 4
    assert set(res_a) == RESULT_KEYS and set(res_b) == RESULT_KEYS
    # ratio is min(b)/min(a) over the raw (unrounded) repeat times
    assert ratio == pytest.approx(
        min(res_b["repeats_s"]) / min(res_a["repeats_s"]), rel=0.05
    )
    assert ratio > 1.0  # b does twice a's work


def test_run_benchmarks_monitor_pair_smoke(tmp_path):
    report = run_benchmarks(
        scale="smoke",
        warmup=1,
        repeats=2,
        only=["monitor_observe_extract", "monitor_observe_extract_legacy"],
    )
    assert report["schema"] == SCHEMA
    assert report["scale"] == "smoke"
    assert report["protocol"]["repeats"] == 2
    assert set(report["results"]) == {
        "monitor_observe_extract",
        "monitor_observe_extract_legacy",
    }
    for res in report["results"].values():
        assert res["median_s"] > 0.0
        assert res["work_units"] == SCALES["smoke"]["monitor_intervals"]
    assert "monitor_observe_extract" in report["speedups"]
    assert report["speedups"]["monitor_observe_extract"] > 0.0
    out = tmp_path / "bench.json"
    write_report(report, str(out))
    assert json.loads(out.read_text())["schema"] == SCHEMA


def test_dict_returns_record_parallel_extras():
    """Benchmarks may return {'units', 'jobs', 'shard_seconds'} dicts."""
    res = time_benchmark(
        lambda: {"units": 8, "jobs": 2, "shard_seconds": [0.25, 0.125]},
        warmup=0,
        repeats=2,
    )
    assert set(res) == RESULT_KEYS | {"jobs", "shard_seconds"}
    assert res["work_units"] == 8
    assert res["jobs"] == 2
    assert res["shard_seconds"] == [0.25, 0.125]


def test_run_benchmarks_serial_twin_pairing():
    report = run_benchmarks(
        scale="smoke",
        warmup=0,
        repeats=1,
        only=["campaign_fanout", "campaign_fanout_serial"],
        jobs=1,
    )
    results = report["results"]
    assert set(results) == {"campaign_fanout", "campaign_fanout_serial"}
    for res in results.values():
        assert res["work_units"] == SCALES["smoke"]["campaign_runs"]
        assert res["jobs"] == 1
        assert len(res["shard_seconds"]) == SCALES["smoke"]["campaign_runs"]
    assert report["speedups"]["campaign_fanout"] > 0.0
    assert report["env"]["jobs"] == 1
    assert report["env"]["cpu_count"] is not None


def test_run_benchmarks_rejects_unknown_inputs():
    with pytest.raises(ValueError, match="scale"):
        run_benchmarks(scale="galactic")
    with pytest.raises(ValueError, match="unknown benchmarks"):
        run_benchmarks(scale="smoke", only=["nope"])
    with pytest.raises(ValueError, match="jobs"):
        run_benchmarks(scale="smoke", jobs=-1)


def test_twin_names_pair_with_current_benchmarks():
    twins = {
        n for n in BENCHMARKS
        if n.endswith(LEGACY_SUFFIX) or n.endswith(SERIAL_SUFFIX)
    }
    assert twins  # the harness must ship its frozen baselines
    assert LEGACY_SUFFIX in TWIN_SUFFIXES and SERIAL_SUFFIX in TWIN_SUFFIXES
    for name in twins:
        for suffix in TWIN_SUFFIXES:
            if name.endswith(suffix):
                assert name[: -len(suffix)] in BENCHMARKS


def test_cli_writes_report(tmp_path):
    out = tmp_path / "BENCH_test.json"
    rc = main(
        [
            "--scale", "smoke", "--repeats", "1", "--out", str(out),
            "--only", "des_event_loop", "des_event_loop_legacy",
        ]
    )
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["schema"] == SCHEMA
    assert "des_event_loop" in doc["speedups"]
