"""Tests for scripts/check_bench_regression.py (loaded by path)."""

import importlib.util
import json
from pathlib import Path

_SCRIPT = Path(__file__).parents[2] / "scripts" / "check_bench_regression.py"
_spec = importlib.util.spec_from_file_location("check_bench_regression", _SCRIPT)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


def _doc(results, speedups=None, schema="repro-bench/1"):
    return {"schema": schema, "results": results, "speedups": speedups or {}}


def _res(times):
    return {"median_s": sorted(times)[len(times) // 2], "repeats_s": times}


def test_identical_runs_pass():
    doc = _doc(
        {"a": _res([0.010, 0.011, 0.012]), "a_legacy": _res([0.02, 0.02, 0.02])},
        {"a": 2.0},
    )
    assert gate.compare(doc, doc, tolerance=0.25) == 0


def test_min_based_gate_ignores_noisy_outlier_repeats():
    base = _doc({"a": _res([0.010, 0.010, 0.010])})
    # One clean repeat among load-inflated ones: min is still at baseline.
    cur = _doc({"a": _res([0.030, 0.010, 0.025])})
    assert gate.compare(cur, base, tolerance=0.25) == 0


def test_absolute_regression_fails():
    base = _doc({"a": _res([0.010, 0.010, 0.010])})
    cur = _doc({"a": _res([0.014, 0.015, 0.016])})
    assert gate.compare(cur, base, tolerance=0.25) == 1


def test_legacy_twin_never_gates():
    base = _doc({"a_legacy": _res([0.010])})
    cur = _doc({"a_legacy": _res([0.050])})
    assert gate.compare(cur, base, tolerance=0.25) == 0


def test_speedup_drop_fails_even_when_absolute_times_pass():
    base = _doc({"a": _res([0.010])}, {"a": 3.0})
    cur = _doc({"a": _res([0.010])}, {"a": 1.5})
    assert gate.compare(cur, base, tolerance=0.25) == 1


def test_missing_and_new_benchmarks_are_reported_not_fatal(capsys):
    base = _doc({"gone": _res([0.010])})
    cur = _doc({"fresh": _res([0.010])})
    assert gate.compare(cur, base, tolerance=0.25) == 0
    out = capsys.readouterr().out
    assert "MISSING" in out and "NEW" in out


def test_schema_mismatch_is_its_own_exit_code():
    assert gate.compare(_doc({}), _doc({}, schema="other/9"), 0.25) == 2


def test_main_reads_files(tmp_path):
    doc = _doc({"a": _res([0.010])}, {"a": 2.0})
    bench = tmp_path / "bench.json"
    baseline = tmp_path / "baseline.json"
    bench.write_text(json.dumps(doc))
    baseline.write_text(json.dumps(doc))
    rc = gate.main(["--bench", str(bench), "--baseline", str(baseline)])
    assert rc == 0


def test_jobs_mismatch_skips_time_and_speedup_checks(capsys):
    # 4-core baseline vs a 1-core CI runner: 3x slower AND a lost
    # speedup, but neither is comparable, so the gate must pass.
    base = _doc(
        {
            "par": dict(_res([0.010]), jobs=4),
            "par_serial": dict(_res([0.040]), jobs=4),
        },
        {"par": 4.0},
    )
    cur = _doc(
        {
            "par": dict(_res([0.030]), jobs=1),
            "par_serial": dict(_res([0.040]), jobs=1),
        },
        {"par": 1.0},
    )
    assert gate.compare(cur, base, tolerance=0.25) == 0
    out = capsys.readouterr().out
    assert out.count("SKIPPED") >= 3  # par, par_serial, and the speedup


def test_equal_jobs_still_gate():
    base = _doc({"par": dict(_res([0.010]), jobs=2)})
    cur = _doc({"par": dict(_res([0.030]), jobs=2)})
    assert gate.compare(cur, base, tolerance=0.25) == 1


def test_checked_in_bench_pr5_speedup():
    """Acceptance pin: BENCH_pr5.json shows >=1.8x fan-out speedup at
    jobs>=4; measured on fewer cores the ratio is meaningless, so skip."""
    import pytest

    path = Path(__file__).parents[2] / "BENCH_pr5.json"
    if not path.exists():
        pytest.skip("BENCH_pr5.json not generated in this checkout")
    doc = json.loads(path.read_text())
    assert doc["schema"] == "repro-bench/2"
    res = doc["results"]["campaign_fanout"]
    assert doc["results"]["campaign_fanout_serial"]["jobs"] == 1
    assert len(res["shard_seconds"]) == res["work_units"]
    if (doc["env"]["cpu_count"] or 1) < 4 or res["jobs"] < 4:
        pytest.skip(
            f"fan-out speedup needs >=4 cores (have "
            f"{doc['env']['cpu_count']}, jobs={res['jobs']})"
        )
    assert doc["speedups"]["campaign_fanout"] >= 1.8


def test_checked_in_bench_pr6_cluster_speedup():
    """Acceptance pin: BENCH_pr6.json shows >=2x calendar-vs-heap
    speedup on the full-scale cluster_scale pair (interleaved
    min-ratio, so the number is load-drift-immune; see
    docs/scheduler.md)."""
    import pytest

    path = Path(__file__).parents[2] / "BENCH_pr6.json"
    if not path.exists():
        pytest.skip("BENCH_pr6.json not generated in this checkout")
    doc = json.loads(path.read_text())
    assert doc["schema"] == "repro-bench/2"
    if doc["scale"] != "full":
        pytest.skip("cluster_scale acceptance is pinned at --scale full")
    assert "cluster_scale_heap" in doc["results"]
    assert doc["speedups"]["cluster_scale"] >= 2.0


def test_checked_in_bench_pr10_data_plane_speedup():
    """Acceptance pin: BENCH_pr10.json shows >=2x batched-vs-pertuple
    topology throughput on the topology_throughput pair (interleaved
    min-ratio over identical simulations — same seed, same tuple counts
    — so the ratio isolates the data-plane fast path; see
    docs/performance.md)."""
    import os

    import pytest

    path = Path(__file__).parents[2] / "BENCH_pr10.json"
    if not path.exists():
        pytest.skip("BENCH_pr10.json not generated in this checkout")
    if (os.cpu_count() or 1) < 2:
        pytest.skip("bench ratios are unreliable below 2 cores")
    doc = json.loads(path.read_text())
    assert doc["schema"] == "repro-bench/2"
    assert "topology_throughput_pertuple" in doc["results"]
    assert doc["speedups"]["topology_throughput"] >= 2.0


def test_checked_in_bench_pr7_minibatch_speedup():
    """Acceptance pin: BENCH_pr7.json shows >=1.5x minibatch-vs-
    fullbatch training throughput on the drnn_minibatch pair
    (interleaved min-ratio per optimizer update — the reason grid-scale
    training uses mini-batched BPTT; see docs/predictors.md)."""
    import pytest

    path = Path(__file__).parents[2] / "BENCH_pr7.json"
    if not path.exists():
        pytest.skip("BENCH_pr7.json not generated in this checkout")
    doc = json.loads(path.read_text())
    assert doc["schema"] == "repro-bench/2"
    assert "drnn_minibatch_fullbatch" in doc["results"]
    assert doc["speedups"]["drnn_minibatch"] >= 1.5
