"""E6 — Complete latency under a misbehaving worker: framework vs baseline.

Companion to E5 on the latency axis: mean complete latency during the
fault window plus whole-run percentiles.  Reuses E5's cached runs.
"""

from benchmarks.conftest import get_reliability_run, once
from repro.experiments import format_table


def test_e6_latency_under_misbehaving_worker(benchmark):
    def run_both():
        return (
            get_reliability_run("url_count", None, 1),
            get_reliability_run("url_count", "drnn", 1),
        )

    baseline, framework = once(benchmark, run_both)
    rows = []
    for arm in (baseline, framework):
        r = arm.result
        rows.append(
            [
                arm.label,
                round(arm.latency_during_fault() * 1e3, 1),
                round(r.latency_percentile(0.50) * 1e3, 1),
                round(r.latency_percentile(0.99) * 1e3, 1),
                r.failed,
                r.dropped,
            ]
        )
    print()
    print(
        format_table(
            [
                "arm",
                "mean lat in fault (ms)",
                "p50 (ms)",
                "p99 (ms)",
                "failed",
                "dropped",
            ],
            rows,
            title="E6: URL Count complete latency, 1 worker slowed 25x",
        )
    )
    # Paper shape: the framework's latency under fault is a small fraction
    # of the baseline's.
    assert framework.latency_during_fault() < baseline.latency_during_fault() / 5
