"""E4 — Dynamic grouping works as expected.

Paper claim 2: tuples are distributed/re-distributed to downstream tasks
"according to any given split ratio on the fly".  Regenerates the
requested-vs-achieved split table across three ratio regimes changed at
runtime, plus the convergence speed after a change.
"""

import numpy as np

from benchmarks.conftest import once
from repro.experiments import format_table
from repro.storm import (
    Bolt,
    Emission,
    SimulationBuilder,
    Spout,
    TopologyBuilder,
    TopologyConfig,
)


class _FirehoseSpout(Spout):
    outputs = {"default": ("n",)}

    def __init__(self, rate=800.0):
        self.rate = rate
        self.i = 0

    def open(self, ctx):
        self.rng = ctx.rng

    def inter_arrival(self):
        return float(self.rng.exponential(1.0 / self.rate))

    def next_tuple(self):
        self.i += 1
        return Emission(values=(self.i,), msg_id=self.i)


class _NullBolt(Bolt):
    outputs = {}
    default_cpu_cost = 0.05e-3

    def execute(self, tup, collector):
        pass


SCHEDULE = [
    (0.0, [0.25, 0.25, 0.25, 0.25]),
    (20.0, [0.70, 0.10, 0.10, 0.10]),
    (40.0, [0.00, 0.50, 0.30, 0.20]),
]


def run_split_experiment():
    builder = TopologyBuilder()
    builder.set_spout("src", _FirehoseSpout())
    builder.set_bolt("sink", _NullBolt(), parallelism=4).dynamic_grouping("src")
    topo = builder.build("e4", TopologyConfig(num_workers=4))
    sim = SimulationBuilder(topo).seed(4).build()

    def driver():
        for when, ratios in SCHEDULE:
            if when > sim.env.now:
                yield sim.env.timeout(when - sim.env.now)
            sim.cluster.set_split_ratios("src", "sink", ratios)

    sim.env.process(driver())
    sinks = sorted(
        (e for e in sim.cluster.executors.values() if e.component_id == "sink"),
        key=lambda e: e.task_id,
    )
    phases = []
    prev = [0] * 4
    for (when, ratios) in SCHEDULE:
        sim.run(duration=20.0)
        counts = [e.executed_count for e in sinks]
        delta = [c - p for c, p in zip(counts, prev)]
        prev = counts
        phases.append((when, ratios, delta))
    return phases


def test_e4_dynamic_grouping_split_fidelity(benchmark):
    phases = once(benchmark, run_split_experiment)
    rows = []
    worst = 0.0
    for when, ratios, delta in phases:
        total = sum(delta)
        for i in range(4):
            achieved = delta[i] / total
            err = abs(achieved - ratios[i])
            worst = max(worst, err)
            rows.append(
                [f"{when:.0f}-{when + 20:.0f}s", i, ratios[i],
                 round(achieved, 4), round(err, 4)]
            )
    print()
    print(
        format_table(
            ["phase", "task", "requested", "achieved", "abs err"],
            rows,
            title="E4: dynamic grouping — requested vs achieved split ratios",
        )
    )
    print(f"\nworst-case split error: {worst:.4f}")
    # Paper shape: achieved ratios match requested, including the
    # zero-ratio exclusion and the on-the-fly changes.
    assert worst < 0.01
    # The zeroed task in phase 3 received nothing.
    assert phases[2][2][0] == 0
