"""E3 — Predicted-vs-actual trace: the DRNN tracks workload shifts.

Regenerates the time-series figure: actual per-interval processing time
against the DRNN and ARIMA forecasts over a test segment containing a
rate burst and an interference episode.
"""

import numpy as np

from benchmarks.conftest import get_prediction_result, once
from repro.experiments import format_table
from repro.models import mape


def test_e3_forecast_trace(benchmark):
    result = once(benchmark, lambda: get_prediction_result("url_count"))
    y_true, y_drnn = result.traces["drnn"]
    _, y_arima = result.traces["arima"]
    n = len(y_true)
    # One worker's share of the pooled test vector = a contiguous segment.
    seg = slice(0, n // 6)
    rows = []
    stride = max(1, (seg.stop - seg.start) // 24)
    for i in range(seg.start, seg.stop, stride):
        rows.append(
            [
                i,
                round(y_true[i] * 1e3, 3),
                round(y_drnn[i] * 1e3, 3),
                round(y_arima[i] * 1e3, 3),
            ]
        )
    print()
    print(
        format_table(
            ["test interval", "actual (ms)", "DRNN (ms)", "ARIMA (ms)"],
            rows,
            title="E3: forecast trace, worker 0 test segment",
        )
    )
    from repro.experiments.plots import ascii_plot

    print()
    print(
        ascii_plot(
            [y_true[seg] * 1e3, y_drnn[seg] * 1e3],
            labels=["actual", "DRNN forecast"],
            width=72,
            height=14,
            title="E3 figure: actual vs DRNN, worker 0 test segment",
            y_label="avg processing time (ms)",
        )
    )
    seg_mape_drnn = mape(y_true[seg], y_drnn[seg])
    seg_mape_arima = mape(y_true[seg], y_arima[seg])
    pooled_corr = float(np.corrcoef(y_true, y_drnn)[0, 1])
    print(f"\nsegment MAPE: DRNN {seg_mape_drnn:.2f}%  ARIMA {seg_mape_arima:.2f}%")
    print(f"pooled corr(actual, DRNN): {pooled_corr:.3f}")
    # Shape: the DRNN forecast must actually track the signal (correlated
    # with the truth over the whole test set, not a flat mean line) and be
    # no worse than ARIMA on the displayed segment.
    assert pooled_corr > 0.4
    assert seg_mape_drnn < seg_mape_arima * 1.1
