"""E11 — Ablation: control interval of the predictive loop.

DESIGN.md design decision: the controller acts every 5 s.  This ablation
re-runs the E5 scenario with faster (2.5 s) and slower (15 s) loops and
reports degradation and fault-window latency — the trade-off between
reaction time and actuation churn.
"""

from benchmarks.conftest import RELIABILITY, get_calibration_predictor, once
from repro.experiments import format_table
from repro.experiments.reliability import run_reliability_scenario

INTERVALS = (2.5, 5.0, 15.0)


def test_e11_control_interval_ablation(benchmark):
    def run_all():
        predictor = get_calibration_predictor("url_count")
        out = {}
        for interval in INTERVALS:
            out[interval] = run_reliability_scenario(
                app="url_count",
                control="drnn",
                k_misbehaving=1,
                predictor=predictor,
                control_interval=interval,
                **RELIABILITY,
            )
        return out

    runs = once(benchmark, run_all)
    rows = []
    for interval in INTERVALS:
        r = runs[interval]
        first_flag = next(
            (t for t, _w, kind in r.controller.flag_intervals() if kind == "flag"
             and t >= RELIABILITY["fault_start"]),
            float("nan"),
        )
        rows.append(
            [
                interval,
                round(r.degradation_pct(), 1),
                round(r.latency_during_fault() * 1e3, 1),
                round(first_flag - RELIABILITY["fault_start"], 1),
            ]
        )
    print()
    print(
        format_table(
            [
                "control interval (s)",
                "degradation %",
                "lat in fault (ms)",
                "detection delay (s)",
            ],
            rows,
            title="E11: control-interval ablation (1 misbehaving worker)",
        )
    )
    # Shape: every interval keeps degradation far below the ~50% baseline
    # collapse; the slowest loop cannot detect faster than its own period.
    for interval in INTERVALS:
        assert runs[interval].degradation_pct() < 20.0
    slow_delay = rows[-1][3]
    assert slow_delay >= 0 or slow_delay != slow_delay  # NaN tolerated
