"""E10 — Dynamic grouping overhead vs shuffle grouping (healthy cluster).

The mechanism must be (nearly) free when nothing misbehaves: this bench
runs the URL Count topology with shuffle vs dynamic grouping (uniform
ratios, no controller) and compares throughput and latency.
"""

from benchmarks.conftest import bench_observability, once
from repro.apps import RateProfile, build_url_count_topology
from repro.experiments import format_table
from repro.storm import SimulationBuilder

RATE = 250.0
DURATION = 120.0


def run_variant(grouping: str):
    topo = build_url_count_topology(
        profile=RateProfile(base=RATE), grouping=grouping
    )
    sim = (
        SimulationBuilder(topo)
        .seed(10)
        .observability(bench_observability())
        .build()
    )
    return sim.run(duration=DURATION)


def test_e10_grouping_overhead(benchmark):
    def run_both():
        return run_variant("shuffle"), run_variant("dynamic")

    shuffle, dynamic = once(benchmark, run_both)
    rows = []
    for label, res in (("shuffle", shuffle), ("dynamic", dynamic)):
        rows.append(
            [
                label,
                round(res.mean_throughput(after=10), 1),
                round(res.mean_complete_latency(after=10) * 1e3, 2),
                round(res.latency_percentile(0.99) * 1e3, 2),
                res.failed,
            ]
        )
    print()
    print(
        format_table(
            ["grouping", "throughput (t/s)", "mean lat (ms)", "p99 (ms)", "failed"],
            rows,
            title="E10: dynamic vs shuffle grouping on a healthy cluster",
        )
    )
    thr_s = shuffle.mean_throughput(after=10)
    thr_d = dynamic.mean_throughput(after=10)
    overhead = 100.0 * (1.0 - thr_d / thr_s)
    print(f"\nthroughput overhead of dynamic grouping: {overhead:.2f}%")
    # Paper shape: the mechanism costs (almost) nothing when idle.
    assert abs(overhead) < 3.0
    assert dynamic.mean_complete_latency(after=10) < (
        shuffle.mean_complete_latency(after=10) * 1.5
    )
