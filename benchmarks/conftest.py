"""Shared, cached resources for the benchmark suite.

Each benchmark regenerates one of the paper's tables/figures (see the
experiment index in DESIGN.md).  The expensive inputs — statistics traces
and the pretrained DRNN predictor — are produced once per session and
shared across files, so the whole suite runs in minutes rather than hours
while every benchmark still *times* its own analysis step.

Scale note: trace lengths and rates are chosen so the suite completes on
a laptop; EXPERIMENTS.md records the parameters alongside the measured
numbers.
"""

from __future__ import annotations

import functools
import os

import pytest

from repro.experiments.prediction import evaluate_models_on_trace
from repro.experiments.reliability import (
    run_reliability_scenario,
    train_calibration_predictor,
)
from repro.experiments.traces import collect_trace
from repro.obs import ObservabilityConfig

#: Standard scales used across the suite (kept in one place on purpose).
TRACE_DURATION = 480.0
TRACE_RATE = 200.0
TRACE_SEED = 0
WINDOW = 8
HORIZON = 5

RELIABILITY = dict(
    base_rate=250.0,
    duration=240.0,
    fault_start=80.0,
    fault_duration=140.0,
    slowdown_factor=25.0,
    seed=11,
)


def bench_observability() -> ObservabilityConfig | None:
    """Observability for benchmark runs, from ``REPRO_BENCH_OBS``.

    Set the env var to a comma-separated subset of ``trace,profile``
    (e.g. ``REPRO_BENCH_OBS=trace,profile``) to run the suite's
    simulations instrumented; unset/empty keeps the zero-cost default.
    """
    raw = os.environ.get("REPRO_BENCH_OBS", "").strip()
    if not raw:
        return None
    parts = {p.strip() for p in raw.split(",") if p.strip()}
    unknown = parts - {"trace", "profile"}
    if unknown:
        raise ValueError(
            f"REPRO_BENCH_OBS has unknown flags {sorted(unknown)}; "
            "use a comma-separated subset of trace,profile"
        )
    return ObservabilityConfig(
        trace="trace" in parts, profile="profile" in parts
    )


@functools.lru_cache(maxsize=None)
def get_trace(app: str):
    return collect_trace(
        app=app, duration=TRACE_DURATION, base_rate=TRACE_RATE, seed=TRACE_SEED,
        observability=bench_observability(),
    )


@functools.lru_cache(maxsize=None)
def get_prediction_result(app: str, interference: bool = True,
                          hidden: tuple = (48, 48), epochs: int = 200):
    bundle = get_trace(app)
    monitor = bundle.monitor if interference else bundle.monitor_no_interference
    return evaluate_models_on_trace(
        monitor,
        app=app,
        window=WINDOW,
        horizon=HORIZON,
        drnn_hidden=hidden,
        drnn_epochs=epochs,
        seed=TRACE_SEED,
    )


@functools.lru_cache(maxsize=None)
def get_calibration_predictor(app: str):
    return train_calibration_predictor(
        app, RELIABILITY["base_rate"], RELIABILITY["seed"], window=6
    )


@functools.lru_cache(maxsize=None)
def get_reliability_run(app: str, control: str | None, k: int):
    predictor = get_calibration_predictor(app) if control == "drnn" else None
    return run_reliability_scenario(
        app=app,
        control=control,
        k_misbehaving=k,
        predictor=predictor,
        observability=bench_observability(),
        **RELIABILITY,
    )


@pytest.fixture(scope="session")
def caches():
    """Expose the cached getters to benchmark bodies."""
    return {
        "trace": get_trace,
        "prediction": get_prediction_result,
        "predictor": get_calibration_predictor,
        "reliability": get_reliability_run,
    }


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    These are system experiments, not microbenchmarks: repetition would
    multiply minutes-long simulations for no statistical gain.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
