"""E7 — Degradation vs number of misbehaving workers (0..2), both arms.

Regenerates the summary table: throughput degradation and fault-window
latency for k = 0, 1, 2 misbehaving workers, plain-Storm baseline vs the
DRNN framework.  k = 0 doubles as the overhead check (cross-checked by
E10): with nothing misbehaving the two arms should be nearly equal.
"""

from benchmarks.conftest import get_reliability_run, once
from repro.experiments import format_table

KS = (0, 1, 2)


def test_e7_degradation_sweep(benchmark):
    def run_all():
        out = {}
        for arm in (None, "drnn"):
            for k in KS:
                out[(arm or "baseline", k)] = get_reliability_run(
                    "url_count", arm, k
                )
        return out

    runs = once(benchmark, run_all)
    rows = []
    for k in KS:
        b = runs[("baseline", k)]
        f = runs[("drnn", k)]
        rows.append(
            [
                k,
                round(b.degradation_pct(), 1),
                round(f.degradation_pct(), 1),
                round(b.latency_during_fault() * 1e3, 1),
                round(f.latency_during_fault() * 1e3, 1),
            ]
        )
    print()
    print(
        format_table(
            [
                "#misbehaving",
                "baseline deg %",
                "framework deg %",
                "baseline lat (ms)",
                "framework lat (ms)",
            ],
            rows,
            title="E7: degradation vs number of misbehaving workers (25x slowdown)",
        )
    )
    # Paper shapes:
    # k=0 crossover — both arms are healthy and near-equal (low single-digit
    # "degradation" is interval noise).
    assert abs(runs[("baseline", 0)].degradation_pct()) < 5
    assert abs(runs[("drnn", 0)].degradation_pct()) < 5
    # For every faulty k the framework degrades far less than the baseline.
    for k in KS[1:]:
        assert (
            runs[("drnn", k)].degradation_pct()
            < runs[("baseline", k)].degradation_pct() / 2
        )
    # Baseline monotonically worsens with more misbehaving workers.
    assert (
        runs[("baseline", 2)].degradation_pct()
        > runs[("baseline", 1)].degradation_pct() * 0.8
    )
