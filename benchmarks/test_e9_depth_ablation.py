"""E9 — Ablation: DRNN depth (1 vs 2 vs 3 recurrent layers).

The "deep" in DRNN: how much does stacking recurrent layers matter on
this prediction task?  Regenerates the depth-vs-accuracy table (same
trace, same budget per variant).
"""

from benchmarks.conftest import get_prediction_result, once
from repro.experiments import format_table

DEPTHS = {
    "1 layer (48)": (48,),
    "2 layers (48, 48)": (48, 48),  # the configuration E1/E2 use
    "3 layers (32, 32, 32)": (32, 32, 32),
}


def test_e9_depth_ablation(benchmark):
    def run_all():
        return {
            label: get_prediction_result("url_count", hidden=hidden)
            for label, hidden in DEPTHS.items()
        }

    results = once(benchmark, run_all)
    rows = []
    for label, res in results.items():
        s = res.scores["drnn"]
        rows.append([label, s["mape"], s["rmse"], s["mae"]])
    print()
    print(
        format_table(
            ["DRNN depth", "MAPE %", "RMSE (s)", "MAE (s)"],
            rows,
            title="E9: DRNN depth ablation (equal training budget)",
        )
    )
    mapes = [res.scores["drnn"]["mape"] for res in results.values()]
    # Shape: every depth is a working model (sanity floor), and the spread
    # across depths is modest — depth is not the dominant factor at this
    # trace size, which the paper's small model also reflects.
    assert all(m < 40 for m in mapes)
