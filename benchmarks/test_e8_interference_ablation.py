"""E8 — Ablation: co-located-interference features on/off.

The paper's DRNN is distinguished by "careful consideration for
interference of co-located worker processes".  This ablation trains the
same DRNN on the same trace with and without the interference feature
block (node utilisation + co-located workers' CPU/executed/backlog) and
compares forecast accuracy.
"""

from benchmarks.conftest import get_prediction_result, once
from repro.experiments import format_table


def test_e8_interference_feature_ablation(benchmark):
    def run_both():
        with_f = get_prediction_result("url_count", interference=True)
        without_f = get_prediction_result("url_count", interference=False)
        return with_f, without_f

    with_f, without_f = once(benchmark, run_both)
    rows = [
        ["with interference features", with_f.scores["drnn"]["mape"],
         with_f.scores["drnn"]["rmse"]],
        ["without (ablated)", without_f.scores["drnn"]["mape"],
         without_f.scores["drnn"]["rmse"]],
    ]
    print()
    print(
        format_table(
            ["DRNN variant", "MAPE %", "RMSE (s)"],
            rows,
            title="E8: DRNN with vs without co-location interference features",
        )
    )
    # Paper shape: dropping the interference features hurts accuracy.
    assert (
        with_f.scores["drnn"]["mape"] < without_f.scores["drnn"]["mape"]
    ), "interference features should improve DRNN accuracy on this trace"
