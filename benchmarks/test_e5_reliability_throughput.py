"""E5 — Throughput under a misbehaving worker: framework vs baseline.

Paper claim 3: the framework "enhances reliability by offering minor
performance degradation with misbehaving workers".  Regenerates the
throughput-over-time series (30 s buckets) for plain Storm (shuffle, no
control) against the full DRNN framework, with one worker slowed 25x.
"""

import numpy as np

from benchmarks.conftest import RELIABILITY, get_reliability_run, once
from repro.experiments import format_table


def test_e5_throughput_under_misbehaving_worker(benchmark):
    def run_both():
        return (
            get_reliability_run("url_count", None, 1),
            get_reliability_run("url_count", "drnn", 1),
        )

    baseline, framework = once(benchmark, run_both)
    series_b = baseline.result.throughput_series()
    series_f = framework.result.throughput_series()
    t, thr_b, thr_f = series_b.t, series_b.y, series_f.y
    rows = []
    for lo in range(0, int(RELIABILITY["duration"]), 30):
        sel = (t > lo) & (t <= lo + 30)
        rows.append(
            [lo, round(float(np.mean(thr_b[sel])), 1),
             round(float(np.mean(thr_f[sel])), 1)]
        )
    print()
    print(
        format_table(
            ["t (s)", "baseline (t/s)", "framework (t/s)"],
            rows,
            title=(
                "E5: URL Count throughput, 1 worker slowed 25x during "
                f"[{RELIABILITY['fault_start']:.0f}, "
                f"{RELIABILITY['fault_start'] + RELIABILITY['fault_duration']:.0f}] s"
            ),
        )
    )
    from repro.experiments.plots import ascii_plot

    print()
    print(
        ascii_plot(
            [thr_b, thr_f],
            labels=["baseline", "framework"],
            x=t,
            width=72,
            height=14,
            title="E5 figure: throughput over time (fault window shaded by the dip)",
            y_label="acked tuples/s",
        )
    )
    deg_b = baseline.degradation_pct()
    deg_f = framework.degradation_pct()
    print(f"\ndegradation: baseline {deg_b:.1f}%  framework {deg_f:.1f}%")
    if framework.controller is not None:
        print("framework flag events:", framework.controller.flag_intervals())
    # Paper shape: baseline collapses, framework degrades only mildly.
    assert deg_b > 25.0
    assert deg_f < 10.0
    assert deg_f < deg_b / 3.0
