"""E2 — Prediction accuracy on Continuous Queries: DRNN vs ARIMA vs SVR.

Same protocol as E1 on the paper's second application.
"""

from benchmarks.conftest import HORIZON, WINDOW, get_prediction_result, once
from repro.experiments import format_table


def test_e2_prediction_accuracy_continuous_query(benchmark):
    result = once(benchmark, lambda: get_prediction_result("continuous_query"))
    print()
    print(
        format_table(
            ["model", "MAPE %", "RMSE (s)", "MAE (s)"],
            result.table_rows(),
            title=(
                f"E2: Continuous Queries — {HORIZON}-interval-ahead "
                f"processing-time prediction (window={WINDOW})"
            ),
        )
    )
    scores = result.scores
    # Paper shape: DRNN clearly beats SVR and wins RMSE against ARIMA;
    # on this app ARIMA stays close on MAPE (see EXPERIMENTS.md).
    assert scores["drnn"]["mape"] < scores["svr"]["mape"]
    assert scores["drnn"]["mape"] < scores["arima"]["mape"] * 1.25
    assert scores["drnn"]["rmse"] < scores["arima"]["rmse"] * 1.05
    assert scores["drnn"]["rmse"] < scores["svr"]["rmse"]
