"""E1 — Prediction accuracy on Windowed URL Count: DRNN vs ARIMA vs SVR.

Paper claim 1: "the proposed DRNN model outperforms widely used baseline
solutions, ARIMA and SVR, in terms of prediction accuracy."

Regenerates the accuracy table (MAPE / RMSE / MAE) for 5-interval-ahead
forecasts of per-worker average tuple processing time.
"""

from benchmarks.conftest import HORIZON, WINDOW, get_prediction_result, once
from repro.experiments import format_table


def test_e1_prediction_accuracy_url_count(benchmark):
    result = once(benchmark, lambda: get_prediction_result("url_count"))
    print()
    print(
        format_table(
            ["model", "MAPE %", "RMSE (s)", "MAE (s)"],
            result.table_rows(),
            title=(
                f"E1: Windowed URL Count — {HORIZON}-interval-ahead "
                f"processing-time prediction (window={WINDOW})"
            ),
        )
    )
    scores = result.scores
    # Paper shape: the DRNN wins the comparison on every metric.
    assert scores["drnn"]["mape"] < scores["svr"]["mape"]
    assert scores["drnn"]["mape"] < scores["arima"]["mape"] * 1.05
    assert scores["drnn"]["rmse"] < scores["arima"]["rmse"]
    assert scores["drnn"]["rmse"] < scores["svr"]["rmse"]
