"""Setup shim for offline legacy editable installs.

The execution environment has no network and no ``wheel`` package, so PEP 660
editable installs fail; ``pip install -e . --no-use-pep517`` with this shim
works everywhere.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
