#!/usr/bin/env python
"""Quickstart: build a topology, run it, attach the predictive framework.

This walks the three layers of the library in ~80 lines:

1. declare a topology on the Storm-like API (spout -> bolt -> bolt);
2. simulate it on a small cluster and read the multilevel statistics;
3. inject a misbehaving worker and let the predictive controller route
   tuples around it via dynamic grouping.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import ControllerConfig, PerformancePredictor
from repro.storm import (
    Bolt,
    Emission,
    NodeSpec,
    SimulationBuilder,
    SlowdownFault,
    Spout,
    TopologyBuilder,
    TopologyConfig,
)


class NumberSpout(Spout):
    """Emits consecutive integers at ~200 tuples/s."""

    outputs = {"default": ("n",)}

    def __init__(self):
        self.i = 0

    def open(self, ctx):
        self.rng = ctx.rng

    def inter_arrival(self):
        return float(self.rng.exponential(1.0 / 200.0))

    def next_tuple(self):
        self.i += 1
        return Emission(values=(self.i,), msg_id=self.i)


class SquareBolt(Bolt):
    """A compute stage: squares its input (≈2 ms of CPU per tuple)."""

    outputs = {"default": ("n", "squared")}
    default_cpu_cost = 2e-3

    def execute(self, tup, collector):
        collector.emit((tup[0], tup[0] ** 2), anchors=[tup])


class SumBolt(Bolt):
    """A cheap sink accumulating a running sum."""

    outputs = {}
    default_cpu_cost = 0.2e-3

    def __init__(self):
        self.total = 0

    def execute(self, tup, collector):
        self.total += tup.value("squared")


def main() -> None:
    # 1. Topology: the squaring stage is fed by DYNAMIC grouping, the
    #    control surface of the predictive framework.
    builder = TopologyBuilder()
    builder.set_spout("numbers", NumberSpout(), parallelism=1)
    builder.set_bolt("square", SquareBolt(), parallelism=4).dynamic_grouping(
        "numbers"
    )
    builder.set_bolt("sum", SumBolt(), parallelism=1).shuffle_grouping("square")
    topology = builder.build("quickstart", TopologyConfig(num_workers=4))

    # 2. Cluster: two 4-core nodes, two worker slots each -> co-located
    #    workers that interfere through the shared CPUs.
    nodes = [NodeSpec("alpha", cores=4, slots=2), NodeSpec("beta", cores=4, slots=2)]

    # 3. Misbehaviour: worker 1 slows down 20x between t=60 and t=150.
    fault = SlowdownFault(start=60, duration=90, worker_id=1, factor=20)

    sim = (
        SimulationBuilder(topology)
        .nodes(nodes)
        .seed(7)
        .faults(fault)
        # Reactive predictor for the quickstart (no training run needed);
        # see examples/url_count_reliability.py for the DRNN version.
        .controller(
            PerformancePredictor(None, window=4),
            ControllerConfig(control_interval=5.0, window=4),
        )
        .build()
    )
    controller = sim.controller

    result = sim.run(duration=210)

    print(f"acked tuples      : {result.acked}")
    print(f"failed tuples     : {result.failed}")
    print(f"mean throughput   : {result.mean_throughput(after=10):8.1f} tuples/s")
    print(f"p99 complete lat. : {result.latency_percentile(0.99) * 1e3:8.2f} ms")
    print()
    print("controller decisions (time, worker, event):")
    for t, worker, event in controller.flag_intervals():
        print(f"  t={t:6.1f}s  worker {worker}  {event.upper()}")
    print()
    final = controller.actions[-1].ratios[("numbers", "square", "default")]
    print("final split ratios over the 4 square tasks:", np.round(final, 3))
    thr = result.throughput_series()
    during = thr.y[(thr.t > 70) & (thr.t <= 150)].mean()
    print(f"throughput during the fault window: {during:.1f} tuples/s "
          "(the framework keeps it near the offered 200/s)")


if __name__ == "__main__":
    main()
