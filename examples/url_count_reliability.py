#!/usr/bin/env python
"""Windowed URL Count under misbehaving workers: baseline vs framework.

Reproduces the paper's headline reliability story on the first evaluation
application (a condensed version of benchmarks E5/E6):

* **baseline** — plain Storm: shuffle grouping, no control;
* **framework** — dynamic grouping + DRNN-predictive controller (the DRNN
  is pretrained on a calibration run of the same topology).

One worker hosting windowed-count tasks slows down 25x mid-run.  The
baseline's queues blow up (latency explodes, tuples time out); the
framework detects the worker from its *predicted* service times and
re-splits the stream around it.

Run:  python examples/url_count_reliability.py
"""

import numpy as np

from repro.experiments.reliability import run_reliability_scenario
from repro.experiments.tables import format_table


def main() -> None:
    common = dict(
        app="url_count",
        k_misbehaving=1,
        base_rate=250.0,
        duration=240.0,
        fault_start=80.0,
        fault_duration=140.0,
        slowdown_factor=25.0,
        seed=11,
    )
    print("running baseline (plain Storm, shuffle grouping) ...")
    baseline = run_reliability_scenario(control=None, **common)
    print("running framework (DRNN predictive control) ... "
          "(includes a calibration run to pretrain the DRNN)")
    framework = run_reliability_scenario(control="drnn", **common)

    rows = []
    for arm in (baseline, framework):
        r = arm.result
        rows.append(
            [
                arm.label,
                round(arm.throughput_healthy(), 1),
                round(arm.throughput_during_fault(), 1),
                round(arm.degradation_pct(), 1),
                round(arm.latency_during_fault() * 1e3, 1),
                r.failed,
            ]
        )
    print()
    print(
        format_table(
            [
                "arm",
                "thr healthy (t/s)",
                "thr faulty (t/s)",
                "degradation %",
                "latency faulty (ms)",
                "failed",
            ],
            rows,
            title="URL Count, 1 misbehaving worker (25x slowdown)",
        )
    )
    print()
    if framework.controller is not None:
        print("framework detector decisions:")
        for t, worker, event in framework.controller.flag_intervals():
            print(f"  t={t:6.1f}s  worker {worker}  {event.upper()}")
    thr_b = baseline.result.throughput_series()
    thr_f = framework.result.throughput_series()
    t = thr_b.t
    print()
    print("throughput timeline (30 s buckets, tuples/s):")
    print(format_table(
        ["t (s)", "baseline", "framework"],
        [
            [int(lo),
             round(float(np.mean(thr_b.y[(t > lo) & (t <= lo + 30)])), 1),
             round(float(np.mean(thr_f.y[(t > lo) & (t <= lo + 30)])), 1)]
            for lo in range(0, 240, 30)
        ],
    ))


if __name__ == "__main__":
    main()
