#!/usr/bin/env python
"""Dynamic grouping in isolation: arbitrary split ratios, changed live.

A condensed version of benchmark E4 ("dynamic grouping works as
expected"): a plain pipeline whose consumer stage is fed by the dynamic
grouping; at runtime the split ratios are retargeted twice, and the
achieved per-task tuple shares are printed against the requested ones.

Run:  python examples/dynamic_grouping_demo.py
"""

import numpy as np

from repro.experiments.tables import format_table
from repro.storm import (
    Bolt,
    Emission,
    SimulationBuilder,
    Spout,
    TopologyBuilder,
    TopologyConfig,
)


class FirehoseSpout(Spout):
    outputs = {"default": ("n",)}

    def __init__(self, rate=500.0):
        self.rate = rate
        self.i = 0

    def open(self, ctx):
        self.rng = ctx.rng

    def inter_arrival(self):
        return float(self.rng.exponential(1.0 / self.rate))

    def next_tuple(self):
        self.i += 1
        return Emission(values=(self.i,), msg_id=self.i)


class CountingBolt(Bolt):
    outputs = {}
    default_cpu_cost = 0.1e-3

    def execute(self, tup, collector):
        pass  # the executor's executed_count is the measurement


def main() -> None:
    builder = TopologyBuilder()
    builder.set_spout("src", FirehoseSpout(rate=500.0))
    builder.set_bolt("sink", CountingBolt(), parallelism=4).dynamic_grouping("src")
    topology = builder.build("dg-demo", TopologyConfig(num_workers=4))
    sim = SimulationBuilder(topology).seed(42).build()

    schedule = [
        (0.0, [0.25, 0.25, 0.25, 0.25]),
        (20.0, [0.70, 0.10, 0.10, 0.10]),
        (40.0, [0.00, 0.50, 0.30, 0.20]),
    ]

    def controller():
        for when, ratios in schedule:
            if when > sim.env.now:
                yield sim.env.timeout(when - sim.env.now)
            sim.cluster.set_split_ratios("src", "sink", ratios)

    sim.env.process(controller())

    sinks = sorted(
        (ex for ex in sim.cluster.executors.values() if ex.component_id == "sink"),
        key=lambda e: e.task_id,
    )
    prev = [0] * 4
    rows = []
    for (when, ratios), horizon in zip(schedule, (20.0, 20.0, 20.0)):
        sim.run(duration=horizon)
        counts = [ex.executed_count for ex in sinks]
        delta = [c - p for c, p in zip(counts, prev)]
        prev = counts
        total = sum(delta)
        achieved = [d / total for d in delta]
        for i in range(4):
            rows.append(
                [f"{when:.0f}-{when + horizon:.0f}s", i, ratios[i],
                 round(achieved[i], 4), round(abs(achieved[i] - ratios[i]), 4)]
            )
    print(format_table(
        ["phase", "task", "requested", "achieved", "abs err"],
        rows,
        title="Dynamic grouping: requested vs achieved split (on-the-fly changes)",
    ))
    errs = [r[4] for r in rows]
    print(f"\nmax split error over all phases/tasks: {max(errs):.4f} "
          "(deficit-WRR converges at O(1/n))")


if __name__ == "__main__":
    main()
