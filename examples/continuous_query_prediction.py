#!/usr/bin/env python
"""Continuous Queries: collect a trace, compare DRNN/ARIMA/SVR forecasts.

A condensed version of benchmark E2: run the Continuous Queries topology
under a time-varying sensor stream with co-location interference episodes,
then train the paper's DRNN and the two baselines to predict each worker's
average tuple processing time five intervals ahead.

Run:  python examples/continuous_query_prediction.py
"""

from repro.experiments import (
    collect_trace,
    evaluate_models_on_trace,
    format_table,
)


def main() -> None:
    print("collecting a 360 s Continuous Queries trace "
          "(time-varying rate + ramping CPU-hog interference) ...")
    bundle = collect_trace(
        app="continuous_query", duration=360.0, base_rate=180.0, seed=3
    )
    snapshots = bundle.result.snapshots
    print(f"  {len(snapshots)} intervals, "
          f"{bundle.result.acked} tuples acked, "
          f"{len(bundle.monitor.worker_ids)} workers observed")

    print("training DRNN / ARIMA / SVR (5-interval-ahead forecasts) ...")
    res = evaluate_models_on_trace(
        bundle.monitor,
        app="continuous_query",
        window=8,
        horizon=5,
        drnn_hidden=(48, 48),
        drnn_epochs=200,
        seed=3,
    )
    print()
    print(
        format_table(
            ["model", "MAPE %", "RMSE (s)", "MAE (s)"],
            res.table_rows(),
            title="Continuous Queries: 5-step-ahead processing-time forecasts",
        )
    )
    print()
    y_true, y_drnn = res.traces["drnn"]
    _, y_arima = res.traces["arima"]
    print("sample of the forecast trace (last 10 test intervals, ms):")
    rows = [
        [i, round(a * 1e3, 3), round(d * 1e3, 3), round(r * 1e3, 3)]
        for i, (a, d, r) in enumerate(
            zip(y_true[-10:], y_drnn[-10:], y_arima[-10:])
        )
    ]
    print(format_table(["i", "actual", "drnn", "arima"], rows))


if __name__ == "__main__":
    main()
