#!/usr/bin/env python
"""API lint: keep first-party code on the blessed run-API surface.

Two rules, enforced over ``src/``, ``examples/``, and ``benchmarks/``
(tests are exempt so the compatibility shims themselves stay covered):

1. **No direct ``StormSimulation(...)`` construction** outside the
   runner/builder modules — new code goes through ``SimulationBuilder``.
2. **No raw tuple unpacking of the series helpers** — use the named
   ``Series`` fields (``series.t`` / ``series.y``) instead of
   ``t, y = result.throughput_series()``.
3. **No reaching into the kernel's event queue** — ``._queue`` is the
   environment's private scheduler state behind the pluggable
   :class:`repro.des.queues.EventQueue` API; callers use
   ``Environment.scheduler`` / ``Environment.new_queue()`` or the
   public queue protocol instead.
4. **No new ``Transport.send`` / ``Transport.send_batch`` callers** —
   both are deprecated shims that emit ``DeprecationWarning``; the one
   delivery entry point (and the one chaos-fault seam) is
   ``Transport.deliver``, which takes the whole emission's
   ``(dst_task, tuple)`` list.

Exit status is non-zero when any violation is found, so CI can gate on
it.  Run from the repository root::

    python scripts/check_api.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: directories scanned (tests/ intentionally absent: shims need coverage)
SCAN_DIRS = ("src", "examples", "benchmarks", "scripts")

#: the only modules allowed to construct StormSimulation directly
#: (plus this checker, whose rule strings would otherwise match themselves)
CONSTRUCTION_ALLOWLIST = {
    Path("src/repro/storm/runner.py"),
    Path("src/repro/storm/builder.py"),
    Path("scripts/check_api.py"),
}

#: the only modules allowed to touch the environment's private queue
#: (the owner, and the frozen legacy twin that predates the queue API)
QUEUE_ACCESS_ALLOWLIST = {
    Path("src/repro/des/environment.py"),
    Path("src/repro/bench/legacy_kernel.py"),
    Path("scripts/check_api.py"),
}

#: the module that defines the deprecated transport shims
TRANSPORT_SEND_ALLOWLIST = {
    Path("src/repro/storm/executor.py"),
    Path("scripts/check_api.py"),
}

CONSTRUCT_RE = re.compile(r"\bStormSimulation\s*\(")
QUEUE_RE = re.compile(r"\._queue\b")
#: ``transport.send(...)`` / any ``.send_batch(...)`` call; a bare
#: ``.send(`` alone would also hit generator ``.send()``, so the send
#: half is anchored on a transport-ish receiver.
TRANSPORT_SEND_RE = re.compile(
    r"(?:\btransport\.send|\.transport\.send|\.send_batch)\s*\("
)
#: ``a, b = ....throughput_series()`` / ``latency_series()`` (raw unpack)
UNPACK_RE = re.compile(
    r"^\s*[A-Za-z_][\w\[\]\. ]*,\s*[A-Za-z_][\w\[\]\. ]*"
    r"(?:,\s*[A-Za-z_][\w\[\]\. ]*)*\s*=\s*.*\."
    r"(?:throughput_series|latency_series)\s*\(\s*\)"
)

Violation = Tuple[Path, int, str, str]


def iter_py_files() -> Iterator[Path]:
    for d in SCAN_DIRS:
        root = REPO_ROOT / d
        if not root.is_dir():
            continue
        yield from sorted(root.rglob("*.py"))


def check_file(path: Path) -> List[Violation]:
    rel = path.relative_to(REPO_ROOT)
    violations: List[Violation] = []
    text = path.read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if stripped.startswith("#"):
            continue
        if CONSTRUCT_RE.search(line) and rel not in CONSTRUCTION_ALLOWLIST:
            violations.append((
                rel, lineno, "direct-construction",
                "construct simulations through SimulationBuilder, not "
                "StormSimulation(...)",
            ))
        if UNPACK_RE.match(line):
            violations.append((
                rel, lineno, "raw-series-unpack",
                "use the named Series fields (series.t / series.y) instead "
                "of tuple-unpacking the series helpers",
            ))
        if QUEUE_RE.search(line) and rel not in QUEUE_ACCESS_ALLOWLIST:
            violations.append((
                rel, lineno, "private-queue-access",
                "._queue is Environment-private; use Environment.scheduler "
                "/ Environment.new_queue() or the EventQueue protocol",
            ))
        if (
            TRANSPORT_SEND_RE.search(line)
            and rel not in TRANSPORT_SEND_ALLOWLIST
        ):
            violations.append((
                rel, lineno, "deprecated-transport-send",
                "Transport.send/send_batch are deprecated shims; pass the "
                "emission's (dst_task, tuple) list to Transport.deliver",
            ))
    return violations


def main() -> int:
    violations: List[Violation] = []
    for path in iter_py_files():
        violations.extend(check_file(path))
    for rel, lineno, rule, msg in violations:
        print(f"{rel}:{lineno}: [{rule}] {msg}")
    if violations:
        print(f"\n{len(violations)} API violation(s) found.")
        return 1
    print("API check passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
