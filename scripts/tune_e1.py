#!/usr/bin/env python
"""Calibration helper: E1 at bench scale, printing all model scores.

Not part of the test/bench suites — used while developing to verify the
experiment produces the paper's shape (DRNN best) before freezing the
benchmark assertions.
"""

import sys
import time

from repro.experiments import collect_trace, evaluate_models_on_trace, format_table

app = sys.argv[1] if len(sys.argv) > 1 else "url_count"
t0 = time.time()
bundle = collect_trace(app=app, duration=480, base_rate=200, seed=0)
print(f"trace: {time.time() - t0:.0f}s, acked={bundle.result.acked}, "
      f"failed={bundle.result.failed}")
t0 = time.time()
res = evaluate_models_on_trace(
    bundle.monitor, app=app, window=8, horizon=5,
    drnn_hidden=(48,), drnn_epochs=120, seed=0,
)
print(f"models: {time.time() - t0:.0f}s")
print(format_table(["model", "MAPE %", "RMSE", "MAE"], res.table_rows(),
                   title=f"E1 calibration ({app})"))

# Ablation preview (E8): interference features off.
t0 = time.time()
res_abl = evaluate_models_on_trace(
    bundle.monitor_no_interference, app=app, window=8, horizon=5,
    drnn_hidden=(48,), drnn_epochs=120, seed=0, models=("drnn",),
)
print(f"ablation: {time.time() - t0:.0f}s")
print("DRNN MAPE without interference features:",
      round(res_abl.scores["drnn"]["mape"], 3))
