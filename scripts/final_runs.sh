#!/bin/sh
# Final deliverable runs: tee test and benchmark outputs into the repo root.
set -x
python -m pytest tests/ 2>&1 | tee /root/repo/test_output.txt
python -m pytest benchmarks/ --benchmark-only -s 2>&1 | tee /root/repo/bench_output.txt
