#!/usr/bin/env python
"""Fail if observability-layer coverage drops below the floor.

Usage::

    pytest tests/ -q --cov=repro.obs --cov-report=json:/tmp/obs_cov.json
    python scripts/check_obs_coverage.py \
        --report /tmp/obs_cov.json [--floor 85] [--file-floor 70]

Reads a ``coverage.py`` JSON report and enforces two gates over
``src/repro/obs/``:

* total line coverage across the package must be at least ``--floor``;
* every individual module must be at least ``--file-floor``, so a new
  uncovered module cannot hide behind well-tested neighbours;
* the modules named in ``REQUIRED_MODULES`` must appear in the report at
  all — a module whose tests were deleted (or never imported) vanishes
  from coverage JSON entirely and would otherwise skip both gates.

The observability layer gets its own floor (separate from the repo-wide
``--cov-fail-under``) because it is the measurement instrument: a blind
spot here silently corrupts every experiment that reads its numbers.
"""

from __future__ import annotations

import argparse
import json
import sys

#: modules that must be exercised by the suite (per-module floor applies)
REQUIRED_MODULES = (
    "spans.py",
    "attribution.py",
    "audit.py",
)


def check(report: dict, floor: float, file_floor: float) -> int:
    files = {
        path: data
        for path, data in report.get("files", {}).items()
        if "repro/obs/" in path.replace("\\", "/")
    }
    if not files:
        print("no repro/obs files in the coverage report — wrong --cov scope?")
        return 2
    failures = []
    for module in REQUIRED_MODULES:
        if not any(
            path.replace("\\", "/").endswith(f"repro/obs/{module}")
            for path in files
        ):
            failures.append(f"required module {module} missing from report")
    total_covered = total_statements = 0
    for path in sorted(files):
        summary = files[path]["summary"]
        covered = int(summary["covered_lines"])
        statements = int(summary["num_statements"])
        total_covered += covered
        total_statements += statements
        pct = 100.0 * covered / statements if statements else 100.0
        status = "ok"
        if pct < file_floor:
            status = "BELOW FLOOR"
            failures.append(f"{path} ({pct:.1f}% < {file_floor:.0f}%)")
        print(f"{status:12s} {path}: {pct:5.1f}% ({covered}/{statements})")
    total_pct = (
        100.0 * total_covered / total_statements if total_statements else 100.0
    )
    print(f"\ntotal repro.obs coverage: {total_pct:.1f}%")
    if total_pct < floor:
        failures.append(f"package total ({total_pct:.1f}% < {floor:.0f}%)")
    if failures:
        print(f"\n{len(failures)} coverage gate(s) failed:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"all obs modules >= {file_floor:.0f}%, package >= {floor:.0f}%")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--report", required=True, help="coverage.py JSON report path"
    )
    parser.add_argument(
        "--floor", type=float, default=85.0,
        help="minimum total line coverage %% for repro.obs (default 85)",
    )
    parser.add_argument(
        "--file-floor", type=float, default=70.0,
        help="minimum per-module line coverage %% (default 70)",
    )
    args = parser.parse_args(argv)
    with open(args.report) as fh:
        report = json.load(fh)
    return check(report, args.floor, args.file_floor)


if __name__ == "__main__":
    sys.exit(main())
