#!/usr/bin/env python
"""Fail if a benchmark run regressed against a pinned baseline.

Usage::

    python scripts/check_bench_regression.py \
        --bench BENCH_pr3.json \
        --baseline benchmarks/perf/baseline_smoke.json \
        [--tolerance 0.25]

Two checks run per benchmark, both with the same ``tolerance``:

* absolute time — ``min(repeats_s)`` (falling back to ``median_s``) must
  not exceed the baseline's by more than ``tolerance``.  The minimum is
  the noise-robust statistic under additive load drift (see
  ``repro.bench.harness``), but separate runs on a shared machine can
  still drift apart, so this check alone is not enough.
* paired speedup — for benchmarks with a frozen ``_legacy`` (or
  same-code ``_serial`` / ``_heap`` / ``_fullbatch`` / ``_pertuple``)
  twin, the interleaved current-vs-twin speedup must not drop below the
  baseline's by more than ``tolerance``.
  Because both sides run interleaved in one process, this ratio is
  immune to machine-load drift and is the reliable signal on busy CI
  runners.

Legacy twins are frozen code — they only measure the machine, so they
are reported but never gate.  Benchmarks present on one side only are
reported and skipped: adding a benchmark must not break CI, and the gate
should complain loudly (not crash) if one disappears.

Parallel benchmarks (schema ``repro-bench/2``) record the worker count
they ran with in a per-result ``jobs`` field.  Times measured at
different worker counts are not comparable — a 4-core baseline against a
1-core CI runner would flag a phantom regression — so any benchmark (or
paired speedup) whose ``jobs`` differ between run and baseline is
reported and skipped, both time and speedup checks.
"""

from __future__ import annotations

import argparse
import json
import sys

LEGACY_SUFFIX = "_legacy"
SERIAL_SUFFIX = "_serial"
HEAP_SUFFIX = "_heap"
FULLBATCH_SUFFIX = "_fullbatch"
PERTUPLE_SUFFIX = "_pertuple"
TWIN_SUFFIXES = (
    LEGACY_SUFFIX,
    SERIAL_SUFFIX,
    HEAP_SUFFIX,
    FULLBATCH_SUFFIX,
    PERTUPLE_SUFFIX,
)


def _best_time(result: dict) -> float:
    repeats = result.get("repeats_s")
    if repeats:
        return float(min(repeats))
    return float(result["median_s"])


def compare(bench: dict, baseline: dict, tolerance: float) -> int:
    if bench.get("schema") != baseline.get("schema"):
        print(
            f"schema mismatch: run {bench.get('schema')!r} vs "
            f"baseline {baseline.get('schema')!r}"
        )
        return 2
    current = bench["results"]
    pinned = baseline["results"]
    failures = []
    for name in sorted(set(current) | set(pinned)):
        if name not in current:
            print(f"MISSING   {name}: in baseline but not in this run")
            continue
        if name not in pinned:
            print(f"NEW       {name}: no baseline yet (skipped)")
            continue
        cur_jobs = current[name].get("jobs")
        base_jobs = pinned[name].get("jobs")
        if cur_jobs != base_jobs:
            print(
                f"SKIPPED   {name}: jobs mismatch "
                f"(run {cur_jobs} vs baseline {base_jobs}) — "
                "times at different worker counts are not comparable"
            )
            continue
        cur = _best_time(current[name])
        base = _best_time(pinned[name])
        ratio = cur / base if base > 0 else float("inf")
        gated = not name.endswith(LEGACY_SUFFIX)
        status = "ok"
        if gated and cur > base * (1.0 + tolerance):
            status = "REGRESSED"
            failures.append(name)
        elif not gated:
            status = "info (legacy, not gated)"
        print(
            f"{status:26s} {name}: best {cur * 1e3:.2f} ms vs baseline "
            f"{base * 1e3:.2f} ms ({ratio:.2f}x)"
        )
    cur_speedups = bench.get("speedups", {})
    base_speedups = baseline.get("speedups", {})
    for name in sorted(set(cur_speedups) & set(base_speedups)):
        cur_jobs = current.get(name, {}).get("jobs")
        base_jobs = pinned.get(name, {}).get("jobs")
        if cur_jobs != base_jobs:
            print(
                f"SKIPPED   {name}: speedup at jobs {cur_jobs} vs "
                f"baseline jobs {base_jobs} — not comparable"
            )
            continue
        cur = float(cur_speedups[name])
        base = float(base_speedups[name])
        status = "ok"
        if cur < base * (1.0 - tolerance):
            status = "REGRESSED"
            failures.append(f"{name} (speedup)")
        print(
            f"{status:26s} {name}: speedup {cur:.2f}x vs "
            f"baseline {base:.2f}x"
        )
    if failures:
        print(
            f"\n{len(failures)} check(s) regressed beyond "
            f"{tolerance:.0%}: {', '.join(failures)}"
        )
        return 1
    print(f"\nall gated benchmarks within {tolerance:.0%} of baseline")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", required=True, help="fresh BENCH_*.json")
    parser.add_argument(
        "--baseline", required=True, help="pinned baseline BENCH_*.json"
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed median_s slowdown fraction (default 0.25)",
    )
    args = parser.parse_args(argv)
    with open(args.bench) as fh:
        bench = json.load(fh)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    return compare(bench, baseline, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
